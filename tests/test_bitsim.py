"""Unit tests for the bit-parallel simulation engine (repro.bv.bitsim).

The packed evaluator's contract has two halves, and both are load-bearing:

* **semantics** — every kernel matches the scalar evaluator lane-for-lane
  (the differential fuzz in ``test_fuzz_differential.py`` sweeps this at
  scale; here we pin the edge cases and both multiply kernels);
* **determinism** — the probing consumers draw from the same seeded RNG
  streams, in the same per-variable order, as the historical scalar
  loops, and leave the stream in the same position.  That equivalence is
  what keeps statuses, hole values and counterexample sequences
  byte-identical across all four ``incremental`` × ``incremental_verify``
  modes, so it gets its own reference-implementation tests.
"""

import random

import pytest

from repro.bv import (
    bv,
    bvadd,
    bvand,
    bvashr,
    bvconcat,
    bveq,
    bvextract,
    bvite,
    bvlshr,
    bvmul,
    bvne,
    bvneg,
    bvnot,
    bvor,
    bvredand,
    bvredor,
    bvshl,
    bvsge,
    bvsgt,
    bvsle,
    bvslt,
    bvsub,
    bvuge,
    bvugt,
    bvule,
    bvult,
    bvvar,
    bvxnor,
    bvxor,
)
from repro.bv.ast import BVExpr
from repro.bv.bitblast import BitBlaster
from repro.bv.bitsim import (
    MUL_LANEWISE_MIN_WIDTH,
    PROBE_LANES,
    PackedEvaluator,
    _mul2,
    _mul_lanewise,
    _pack_values,
    _transpose64,
    _unpack_values,
    first_sat_lane,
    pack_assignments,
    unpack_lane,
)
from repro.bv.eval import evaluate, free_vars, var_widths


def _lanes_match_scalar(expr: BVExpr, batch):
    """Assert the packed evaluation of ``batch`` equals per-lane scalar."""
    words = PackedEvaluator(expr).evaluate_batch(batch)
    assert len(words) == expr.width
    for lane, assignment in enumerate(batch):
        assert unpack_lane(words, lane) == evaluate(expr, assignment), \
            (expr, lane, assignment)


def _random_batch(widths, rng, lanes):
    return [{name: rng.getrandbits(width) for name, width in widths.items()}
            for _ in range(lanes)]


# --------------------------------------------------------------------------- #
# Transposition and packing
# --------------------------------------------------------------------------- #
class TestPacking:
    def test_transpose64_moves_every_bit(self):
        rng = random.Random(1)
        x = rng.getrandbits(4096)
        t = _transpose64(x)
        for _ in range(256):
            r, c = rng.randrange(64), rng.randrange(64)
            assert (x >> (r * 64 + c)) & 1 == (t >> (c * 64 + r)) & 1

    def test_transpose64_is_an_involution(self):
        rng = random.Random(2)
        for _ in range(8):
            x = rng.getrandbits(4096)
            assert _transpose64(_transpose64(x)) == x

    @pytest.mark.parametrize("width", [1, 8, 13, 64, 65, 100])
    @pytest.mark.parametrize("lanes", [1, 5, 64, 100])
    def test_pack_unpack_round_trip(self, width, lanes):
        rng = random.Random(width * 1000 + lanes)
        values = [rng.getrandbits(width) for _ in range(lanes)]
        words = _pack_values(values, width)
        assert len(words) == width
        assert _unpack_values(words, lanes) == values
        for lane, value in enumerate(values):
            assert unpack_lane(words, lane) == value

    def test_pack_assignments_masks_oversized_values(self):
        packed = pack_assignments([{"x": 0b1111}], {"x": 2})
        assert unpack_lane(packed["x"], 0) == 0b11

    def test_pack_assignments_bit_semantics(self):
        # result[name][b] bit i == bit b of assignments[i][name].
        packed = pack_assignments([{"x": 0b01}, {"x": 0b10}], {"x": 2})
        assert packed["x"][0] == 0b01  # bit 0 set only in lane 0
        assert packed["x"][1] == 0b10  # bit 1 set only in lane 1

    def test_first_sat_lane(self):
        assert first_sat_lane(0) == -1
        assert first_sat_lane(0b1) == 0
        assert first_sat_lane(0b1010000) == 4
        assert first_sat_lane(1 << 63) == 63


# --------------------------------------------------------------------------- #
# Kernel edge cases (scalar evaluate is the oracle)
# --------------------------------------------------------------------------- #
class TestKernels:
    def test_arithmetic_carry_chains(self):
        a, b = bvvar("a", 8), bvvar("b", 8)
        edge = [0, 1, 127, 128, 254, 255]
        batch = [{"a": x, "b": y} for x in edge for y in edge][:PROBE_LANES]
        for expr in (bvadd(a, b), bvsub(a, b), bvneg(a), bvnot(a),
                     bvadd(a, b, bv(1, 8))):
            _lanes_match_scalar(expr, batch)

    def test_comparison_boundaries(self):
        a, b = bvvar("a", 4), bvvar("b", 4)
        # All 16x16 pairs cover every boundary: equal, off-by-one, and the
        # signed wrap at 7/8 (the sign-flip cases ripple chains get wrong).
        pairs = [{"a": x, "b": y} for x in range(16) for y in range(16)]
        for op in (bvult, bvule, bvugt, bvuge, bvslt, bvsle, bvsgt, bvsge,
                   bveq, bvne):
            for base in range(0, len(pairs), PROBE_LANES):
                _lanes_match_scalar(op(a, b), pairs[base:base + PROBE_LANES])

    def test_shift_saturation_and_sign_fill(self):
        a, sh = bvvar("a", 5), bvvar("sh", 5)
        # Shift amounts at and beyond the width must saturate (to the sign
        # for ashr); 5 is not a power of two, catching barrel-stage bugs.
        batch = [{"a": value, "sh": amount}
                 for value in (0, 1, 0b10000, 0b11111, 0b10101)
                 for amount in (0, 1, 4, 5, 6, 31)][:PROBE_LANES]
        for op in (bvshl, bvlshr, bvashr):
            _lanes_match_scalar(op(a, sh), batch)

    def test_structural_ops(self):
        rng = random.Random(3)
        a, b, c = bvvar("a", 5), bvvar("b", 3), bvvar("c", 1)
        batch = _random_batch({"a": 5, "b": 3, "c": 1}, rng, PROBE_LANES)
        for expr in (bvconcat(a, b), bvextract(3, 1, a), bvredand(a),
                     bvredor(a), bvite(c, a, bvnot(a)), bvxnor(b, b),
                     bvxor(a, a), bvand(a, a, bvnot(a)), bvor(a, bvnot(a))):
            _lanes_match_scalar(expr, batch)

    @pytest.mark.parametrize("width", [4, 8, MUL_LANEWISE_MIN_WIDTH, 24])
    def test_multiply_both_kernels(self, width):
        # Widths straddle MUL_LANEWISE_MIN_WIDTH so both the packed
        # shift-add and the lane-wise fallback run against the oracle.
        rng = random.Random(width)
        a, b = bvvar("a", width), bvvar("b", width)
        batch = _random_batch({"a": width, "b": width}, rng, PROBE_LANES)
        batch[0] = {"a": 0, "b": (1 << width) - 1}
        batch[1] = {"a": (1 << width) - 1, "b": (1 << width) - 1}
        _lanes_match_scalar(bvmul(a, b), batch)

    def test_multiply_kernels_agree_with_each_other(self):
        rng = random.Random(9)
        width, m = 16, (1 << PROBE_LANES) - 1
        a = _pack_values([rng.getrandbits(width) for _ in range(PROBE_LANES)],
                         width)
        b = _pack_values([rng.getrandbits(width) for _ in range(PROBE_LANES)],
                         width)
        assert _mul2(a, b, m) == _mul_lanewise(a, b, m)

    def test_partial_batches_and_wide_batches(self):
        a, b = bvvar("a", 7), bvvar("b", 7)
        expr = bveq(bvadd(a, b), bvmul(a, b))
        rng = random.Random(4)
        for lanes in (1, 3, PROBE_LANES, 100):
            _lanes_match_scalar(expr, _random_batch({"a": 7, "b": 7},
                                                    rng, lanes))

    def test_sat_lanes_requires_one_bit_formula(self):
        with pytest.raises(ValueError):
            PackedEvaluator(bvadd(bvvar("a", 4), bvvar("b", 4))).sat_lanes(
                [{"a": 1, "b": 2}])

    def test_sat_lanes_marks_exactly_the_satisfying_lanes(self):
        a = bvvar("a", 4)
        expr = bvult(a, bv(3, 4))
        batch = [{"a": value} for value in (5, 2, 9, 0, 3, 1)]
        hits = PackedEvaluator(expr).sat_lanes(batch)
        assert hits == 0b101010
        assert first_sat_lane(hits) == 1


# --------------------------------------------------------------------------- #
# AIG packed simulation
# --------------------------------------------------------------------------- #
class TestAigSimulatePacked:
    def test_matches_scalar_simulation_on_blasted_design(self):
        a, b = bvvar("a", 4), bvvar("b", 4)
        blaster = BitBlaster()
        bits = blaster.blast(bvadd(bvmul(a, b), bvite(bvult(a, b), a, b)))
        aig = blaster.aig
        rng = random.Random(5)
        lanes = 64
        patterns = [{name: rng.getrandbits(1) for name in aig.inputs}
                    for _ in range(lanes)]
        input_words = {
            name: sum(patterns[i][name] << i for i in range(lanes))
            for name in aig.inputs
        }
        packed = aig.simulate_packed(input_words, bits, lanes=lanes)
        for i, pattern in enumerate(patterns):
            scalar = aig.simulate(pattern, bits)
            assert [(word >> i) & 1 for word in packed] == scalar, i

    def test_lane_mask_truncates_oversized_words(self):
        aig = BitBlaster().aig
        blaster = BitBlaster()
        bits = blaster.blast(bvnot(bvvar("x", 1)))
        aig = blaster.aig
        # Bits beyond the lane count must not leak into outputs.
        (out,) = aig.simulate_packed({name: ~0 for name in aig.inputs},
                                     bits, lanes=4)
        assert out == 0


# --------------------------------------------------------------------------- #
# Memoized free_vars / var_widths
# --------------------------------------------------------------------------- #
class TestVarWidthsMemoization:
    def test_caches_are_isolated_from_caller_mutation(self):
        expr = bvadd(bvvar("a", 4), bvvar("b", 4))
        first = var_widths(expr)
        first["intruder"] = 99
        first["a"] = 1
        assert var_widths(expr) == {"a": 4, "b": 4}
        assert free_vars(expr) == frozenset({"a", "b"})

    def test_width_conflict_raises(self):
        conflicted = bvconcat(bvvar("x", 2), bvvar("x", 3))
        with pytest.raises(ValueError, match="used at widths"):
            var_widths(conflicted)

    def test_matches_legacy_discovery_order(self):
        # The probing RNG draws one value per variable in var_widths
        # iteration order, so the memoized traversal must reproduce the
        # legacy first-discovery order exactly — not just the same set.
        def legacy_order(expr):
            seen = []
            for node in expr.iter_dag():
                if node.op == "var" and node.name not in seen:
                    seen.append(node.name)
            return seen

        rng = random.Random(6)
        names = [f"v{i}" for i in range(6)]
        for _ in range(50):
            pool = [bvvar(rng.choice(names), 4) for _ in range(4)]
            for _ in range(10):
                x, y = rng.choice(pool), rng.choice(pool)
                pool.append(rng.choice((bvadd, bvsub, bvand, bvor, bvxor,
                                        bvmul))(x, y))
            expr = pool[-1]
            assert list(var_widths(expr)) == legacy_order(expr), expr


# --------------------------------------------------------------------------- #
# Probe-layer determinism: the packed loop vs a scalar reference
# --------------------------------------------------------------------------- #
def _scalar_probe_reference(formula, seed, probes):
    """The historical one-probe-at-a-time layer 2, reimplemented verbatim.

    Returns (model_or_None, rng): the first satisfying assignment within
    the probe budget, and the RNG left exactly where the scalar loop
    stopped drawing.
    """
    rng = random.Random(seed)
    widths = var_widths(formula)
    for _ in range(probes):
        assignment = {name: rng.getrandbits(width)
                      for name, width in widths.items()}
        if evaluate(formula, assignment):
            return assignment, rng
    return None, rng


class TestProbeDeterminism:
    def test_hit_model_and_stream_position_match_scalar(self):
        from repro.smt.solver import SmtSolver

        # ~1/16 hit probability per probe: hits land mid-batch, which is
        # exactly the case the rewind-and-replay logic must get right.
        formula = bveq(bvvar("x", 4), bv(11, 4))
        hits_checked = 0
        for seed in range(8):
            expected, reference_rng = _scalar_probe_reference(formula, seed, 96)
            solver = SmtSolver(random_probes=96, seed=seed)
            result = solver.check([formula])
            if expected is not None:
                assert result.status == "sat"
                assert result.strategy == "simulate"
                assert {name: result.model[name] for name in expected} \
                    == expected, seed
                hits_checked += 1
            # The stream must sit exactly where the scalar loop left it —
            # this is what keeps every downstream CEGIS trajectory
            # byte-identical.
            assert solver.rng.getrandbits(64) \
                == reference_rng.getrandbits(64), seed
        assert hits_checked > 0

    def test_miss_consumes_the_full_budget_identically(self):
        from repro.smt.solver import SmtSolver

        # Unsat but not constant-foldable: no square is 3 modulo 16, so
        # every probe misses and layer 3 settles it.
        x = bvvar("x", 4)
        unsat = bveq(bvmul(x, x), bv(3, 4))
        _, reference_rng = _scalar_probe_reference(unsat, 3, 40)
        solver = SmtSolver(random_probes=40, seed=3)
        result = solver.check([unsat])
        assert result.status == "unsat"
        assert result.probe_lanes == 40
        assert solver.rng.getrandbits(64) == reference_rng.getrandbits(64)

    def test_probe_lanes_counts_chunks_not_the_budget(self):
        from repro.smt.solver import SmtSolver

        # A formula satisfied by ~half of assignments hits in chunk one,
        # so only PROBE_LANES lanes are ever evaluated of the 640 budget.
        formula = bvult(bvvar("x", 8), bv(128, 8))
        solver = SmtSolver(random_probes=640, seed=0)
        result = solver.check([formula])
        assert result.status == "sat"
        assert result.probe_lanes == PROBE_LANES


# --------------------------------------------------------------------------- #
# Telemetry flow: CegisResult -> SynthesisOutcome -> MappingRecord -> sweep
# --------------------------------------------------------------------------- #
class TestProbeTelemetry:
    def test_cegis_counts_candidate_probe_lanes(self):
        from repro.smt.cegis import Obligation, synthesize
        from repro.smt.solver import SmtSolver

        x, k = bvvar("x", 4), bvvar("k", 4)
        outcome = synthesize([Obligation(spec=bvult(x, bv(9, 4)),
                                         sketch=bvult(x, k))],
                             {"k": 4}, solver=SmtSolver(seed=0))
        assert outcome.status == "sat"
        assert outcome.probe_lanes_evaluated > 0

    def test_zero_probes_disables_probing_and_telemetry(self):
        from repro.smt.cegis import Obligation, synthesize
        from repro.smt.solver import SmtSolver

        x, k = bvvar("x", 4), bvvar("k", 4)
        probed = synthesize([Obligation(spec=bvult(x, bv(9, 4)),
                                        sketch=bvult(x, k))],
                            {"k": 4}, solver=SmtSolver(seed=0))
        unprobed = synthesize([Obligation(spec=bvult(x, bv(9, 4)),
                                          sketch=bvult(x, k))],
                              {"k": 4}, random_probes=0,
                              solver=SmtSolver(random_probes=0, seed=0))
        assert unprobed.status == probed.status == "sat"
        assert unprobed.probe_lanes_evaluated == 0
        assert unprobed.probe_hits == 0

    def test_record_and_sweep_aggregation(self):
        from repro.engine.parallel import SweepResult
        from repro.engine.session import MappingSession
        from repro.harness.runner import ExperimentConfig, map_benchmark
        from repro.workloads.generator import sample_workloads

        benchmark = sample_workloads("intel-cyclone10lp", 1, seed=0,
                                     max_width=8)[0]
        with MappingSession() as session:
            record = map_benchmark(session, benchmark, ExperimentConfig())
            cached = map_benchmark(session, benchmark, ExperimentConfig())
        assert record.probe_lanes_evaluated > 0
        assert cached.cache_hit
        # Sweep aggregation counts only the records that ran synthesis.
        sweep = SweepResult(records=[record, cached])
        assert sweep.probe_lanes_evaluated == record.probe_lanes_evaluated
        assert sweep.probe_hits == record.probe_hits
        assert sweep.prefilter_cex_found == record.prefilter_cex_found
        # And the wire format round-trips the new fields.
        assert type(record).from_dict(record.to_dict()) == record

    def test_cache_key_separates_probe_budgets(self):
        from repro.engine.cache import SynthesisCache

        base = SynthesisCache.key("fp", "arch", "dsp", 1.0, 1, True,
                                  random_probes=32)
        other = SynthesisCache.key("fp", "arch", "dsp", 1.0, 1, True,
                                   random_probes=0)
        assert base != other


# --------------------------------------------------------------------------- #
# CLI threading: --probes and lakeroad bench
# --------------------------------------------------------------------------- #
class TestCliThreading:
    def test_map_and_sweep_parsers_accept_probes(self):
        from repro.cli import build_parser, build_sweep_parser

        args = build_parser().parse_args(["design.v", "--probes", "128"])
        assert args.probes == 128
        assert build_parser().parse_args(["design.v"]).probes == 32
        sweep = build_sweep_parser().parse_args(["--probes", "0"])
        assert sweep.probes == 0

    def test_bench_writes_snapshot(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["bench", "--arch", "intel-cyclone10lp", "--count", "1",
                   "--throughput-assignments", "256",
                   "--output-dir", str(tmp_path)])
        assert rc == 0
        snapshots = list(tmp_path.glob("BENCH_*.json"))
        assert len(snapshots) == 1
        import json

        snapshot = json.loads(snapshots[0].read_text())
        assert snapshot["totals"]["benchmarks"] == 1
        assert snapshot["probe_throughput"]["speedup"] > 0
        assert {"probe_lanes_evaluated", "probe_hits",
                "prefilter_cex_found"} <= set(snapshot["probes"])
        assert capsys.readouterr().out.strip() == str(snapshots[0])
