"""Seeded differential fuzzing across the solver stack.

Two independent implementations that must agree exactly are only as
trustworthy as the inputs they have been compared on.  This suite generates
random instances from a seed and cross-checks:

* every registered CDCL configuration (``cdcl``, ``cdcl-agile``,
  ``cdcl-stable``, ``cdcl-static``) and DPLL against brute-force
  enumeration on random CNFs — sat/unsat status and model validity;
* the word-level ``check_sat`` stack (simplify → blast → CNF → solver)
  against brute-force evaluation on random bitvector constraints;
* all four CEGIS mode combinations (``incremental`` ×
  ``incremental_verify``) against each other — statuses, hole values,
  iteration and example counts — and the winning hole assignments against
  brute-force enumeration of the full hole space;
* clause-database reduction at its most aggressive settings
  (``reduce_interval=2, max_lbd_keep=0`` — reduce after every other
  learned clause, protect nothing but locked clauses) against brute force
  and against the unreduced baseline, over warm incremental solver use and
  all four CEGIS modes;
* the bit-parallel :class:`~repro.bv.bitsim.PackedEvaluator` against the
  scalar evaluator, lane by lane, on random expressions covering **every**
  operator at random widths and batch sizes — and ``AIG.simulate_packed``
  against ``AIG.simulate`` on bit-blasted random designs;
* the flat-arena :class:`~repro.sat.solver.CDCLSolver` against the retained
  :class:`~repro.sat.legacy.LegacyCDCLSolver` — not just statuses but the
  **entire observable trajectory** (models in emission order, trail,
  conflict/decision/propagation/restart counters, cores, reduction
  telemetry) over incremental add-clause/assumption workloads, plus the
  four CEGIS modes re-run on the legacy engine via monkeypatching and
  unsat-core strengthening re-solves across three independent engines;
* the warm solver service under randomized QoS churn — flood submissions,
  admission-cap rejections, and elastic pool resizes interleaved with a
  benchmark sweep — against the same sweep run serially: the served
  records must be field-identical (minus wall-clock and cache provenance)
  no matter how the scheduler interleaved, coalesced, or resized.

Every case derives its RNG from ``LAKEROAD_FUZZ_SEED`` (default 0) and its
case index; failing assertions embed the case seed so a failure replays
with ``LAKEROAD_FUZZ_SEED=<seed> pytest tests/test_fuzz_differential.py``.
CI runs a fixed seed matrix with larger case counts
(``LAKEROAD_FUZZ_*_CASES``); the defaults keep the tier-1 run fast.
"""

import multiprocessing
import os
import random
import time
import zlib

import pytest

from repro.bv import (
    bv, bvvar, bvadd, bvsub, bvmul, bvand, bvor, bvxor, bvxnor, bvnot,
    bvneg, bveq, bvne, bvult, bvule, bvugt, bvuge, bvslt, bvsle, bvsgt,
    bvsge, bvite, bvshl, bvlshr, bvashr, bvconcat, bvextract, bvredand,
    bvredor, zero_extend,
)
from repro.bv.bitblast import BitBlaster
from repro.bv.bitsim import PackedEvaluator, pack_assignments, unpack_lane
from repro.bv.eval import evaluate, var_widths
from repro.engine.backends import backend_by_name
from repro.sat.cnf import CNF
from repro.smt.cegis import Obligation, synthesize
from repro.smt.solver import SmtSolver, check_sat

pytestmark = pytest.mark.fuzz

FUZZ_SEED = int(os.environ.get("LAKEROAD_FUZZ_SEED", "0"))
CNF_CASES = int(os.environ.get("LAKEROAD_FUZZ_CNF_CASES", "120"))
BV_CASES = int(os.environ.get("LAKEROAD_FUZZ_BV_CASES", "40"))
CEGIS_CASES = int(os.environ.get("LAKEROAD_FUZZ_CEGIS_CASES", "18"))
PACKED_CASES = int(os.environ.get("LAKEROAD_FUZZ_PACKED_CASES", "60"))
QOS_CASES = int(os.environ.get("LAKEROAD_FUZZ_QOS_CASES", "2"))

#: Every default portfolio member plus the diversified CDCL configs and the
#: two explicit engine selections (the flat-arena core and the retained
#: dict-based baseline it must replay exactly).
SOLVER_BACKENDS = ("cdcl", "cdcl-agile", "cdcl-stable", "cdcl-static",
                   "cdcl-arena", "cdcl-legacy", "dpll")


def _case_seed(stream: str, index: int) -> int:
    # crc32, not hash(): the builtin is PYTHONHASHSEED-randomized per
    # process, which would make the replay instruction a lie.
    return (FUZZ_SEED * 1_000_003 + index) ^ (zlib.crc32(stream.encode()) & 0xFFFF)


def _replay(stream: str, case_seed: int) -> str:
    return (f"[{stream} case seed {case_seed}; replay with "
            f"LAKEROAD_FUZZ_SEED={FUZZ_SEED}]")


# --------------------------------------------------------------------------- #
# Random instance generators
# --------------------------------------------------------------------------- #
def _random_hard_cnf(rng: random.Random) -> CNF:
    """3-SAT near the phase transition: dense enough to learn clauses, so
    aggressive reduce settings genuinely fire mid-search."""
    num_vars = rng.randint(6, 11)
    clauses = []
    for _ in range(int(4.3 * num_vars)):
        chosen = rng.sample(range(1, num_vars + 1), 3)
        clauses.append([v if rng.random() < 0.5 else -v for v in chosen])
    return CNF(num_vars=num_vars, clauses=clauses)


def _random_cnf(rng: random.Random) -> CNF:
    num_vars = rng.randint(2, 8)
    clauses = []
    for _ in range(rng.randint(2, 30)):
        clause = []
        for _ in range(rng.randint(1, 4)):
            var = rng.randint(1, num_vars)
            clause.append(var if rng.random() < 0.5 else -var)
        clauses.append(clause)
    return CNF(num_vars=num_vars, clauses=clauses)


def _brute_force_cnf(cnf: CNF) -> str:
    for bits in range(1 << cnf.num_vars):
        assignment = [None] + [bool((bits >> i) & 1)
                               for i in range(cnf.num_vars)]
        if cnf.evaluate(assignment):
            return "sat"
    return "unsat"


_BINARY_OPS = (bvadd, bvsub, bvmul, bvand, bvor, bvxor)
_UNARY_OPS = (bvnot, bvneg)


def _random_expr(rng: random.Random, variables, width: int, depth: int):
    """A random well-widthed expression over ``variables`` (name -> width)."""
    if depth <= 0 or rng.random() < 0.25:
        named = [name for name, w in variables.items() if w == width]
        if named and rng.random() < 0.7:
            return bvvar(rng.choice(named), width)
        return bv(rng.getrandbits(width), width)
    roll = rng.random()
    if roll < 0.15 and width == 1:
        # A predicate over wider operands.
        operand_width = rng.randint(1, 3)
        lhs = _random_expr(rng, variables, operand_width, depth - 1)
        rhs = _random_expr(rng, variables, operand_width, depth - 1)
        return rng.choice((bveq, bvne, bvult))(lhs, rhs)
    if roll < 0.30:
        return rng.choice(_UNARY_OPS)(
            _random_expr(rng, variables, width, depth - 1))
    if roll < 0.45:
        condition = _random_expr(rng, variables, 1, depth - 1)
        return bvite(condition,
                     _random_expr(rng, variables, width, depth - 1),
                     _random_expr(rng, variables, width, depth - 1))
    return rng.choice(_BINARY_OPS)(
        _random_expr(rng, variables, width, depth - 1),
        _random_expr(rng, variables, width, depth - 1))


def _assignments(variables):
    """Every concrete assignment of ``variables`` (small widths only)."""
    names = sorted(variables)
    total = 1
    for name in names:
        total <<= variables[name]
    for encoded in range(total):
        assignment = {}
        shift = encoded
        for name in names:
            width = variables[name]
            assignment[name] = shift & ((1 << width) - 1)
            shift >>= width
        yield assignment


_FULL_BINARY_OPS = (bvadd, bvsub, bvmul, bvand, bvor, bvxor, bvxnor,
                    bvshl, bvlshr, bvashr)
_FULL_PREDICATES = (bveq, bvne, bvult, bvule, bvugt, bvuge,
                    bvslt, bvsle, bvsgt, bvsge)


def _random_full_expr(rng: random.Random, variables, width: int, depth: int):
    """Like :func:`_random_expr` but over the *complete* operator set —
    shifts, signed compares, concat/extract, reductions — so the packed
    evaluator's every kernel gets fuzzed, not just the CEGIS-friendly
    subset.  Leaves prefer variables (adapting widths by extract /
    zero-extension) so expressions rarely constant-fold away."""
    if depth <= 0 or rng.random() < 0.2:
        named = [name for name, w in variables.items() if w == width]
        if named and rng.random() < 0.85:
            return bvvar(rng.choice(named), width)
        if variables and rng.random() < 0.8:
            name = rng.choice(sorted(variables))
            leaf = bvvar(name, variables[name])
            if leaf.width > width:
                return bvextract(width - 1, 0, leaf)
            if leaf.width < width:
                return zero_extend(leaf, width - leaf.width)
            return leaf
        return bv(rng.getrandbits(width), width)
    roll = rng.random()
    if width == 1 and roll < 0.3:
        operand_width = rng.randint(1, 6)
        if rng.random() < 0.4:
            source = _random_full_expr(rng, variables, operand_width, depth - 1)
            return rng.choice((bvredand, bvredor))(source)
        return rng.choice(_FULL_PREDICATES)(
            _random_full_expr(rng, variables, operand_width, depth - 1),
            _random_full_expr(rng, variables, operand_width, depth - 1))
    if roll < 0.12:
        return rng.choice((bvnot, bvneg))(
            _random_full_expr(rng, variables, width, depth - 1))
    if roll < 0.24:
        condition = _random_full_expr(rng, variables, 1, depth - 1)
        return bvite(condition,
                     _random_full_expr(rng, variables, width, depth - 1),
                     _random_full_expr(rng, variables, width, depth - 1))
    if roll < 0.34 and width >= 2:
        low_width = rng.randint(1, width - 1)
        return bvconcat(
            _random_full_expr(rng, variables, width - low_width, depth - 1),
            _random_full_expr(rng, variables, low_width, depth - 1))
    if roll < 0.44:
        source_width = width + rng.randint(0, 4)
        lo = rng.randint(0, source_width - width)
        return bvextract(lo + width - 1, lo,
                         _random_full_expr(rng, variables, source_width,
                                           depth - 1))
    return rng.choice(_FULL_BINARY_OPS)(
        _random_full_expr(rng, variables, width, depth - 1),
        _random_full_expr(rng, variables, width, depth - 1))


# --------------------------------------------------------------------------- #
# (a) SAT-solver differential: backends vs DPLL vs brute force
# --------------------------------------------------------------------------- #
class TestSolverDifferential:
    def test_backends_agree_with_brute_force_on_random_cnfs(self):
        for index in range(CNF_CASES):
            case_seed = _case_seed("cnf", index)
            rng = random.Random(case_seed)
            cnf = _random_cnf(rng)
            expected = _brute_force_cnf(cnf)
            for name in SOLVER_BACKENDS:
                result = backend_by_name(name).solve(cnf, None, ())
                assert result.status == expected, \
                    (f"{name} answered {result.status}, brute force says "
                     f"{expected} on {cnf.clauses!r} {_replay('cnf', case_seed)}")
                if result.is_sat:
                    assignment = [None] + [bool(result.model.get(var, False))
                                           for var in range(1, cnf.num_vars + 1)]
                    assert cnf.evaluate(assignment), \
                        (f"{name} returned an invalid model on "
                         f"{cnf.clauses!r} {_replay('cnf', case_seed)}")

    def test_assumption_solves_agree_with_unit_clauses(self):
        for index in range(CNF_CASES // 2):
            case_seed = _case_seed("assumptions", index)
            rng = random.Random(case_seed)
            cnf = _random_cnf(rng)
            assumptions = [rng.randint(1, cnf.num_vars)
                           * (1 if rng.random() < 0.5 else -1)
                           for _ in range(rng.randint(1, 3))]
            with_units = CNF(num_vars=cnf.num_vars,
                             clauses=cnf.clauses + [[lit] for lit in assumptions])
            expected = _brute_force_cnf(with_units)
            for name in SOLVER_BACKENDS:
                result = backend_by_name(name).solve(cnf, None, assumptions)
                assert result.status == expected, \
                    (f"{name} under assumptions {assumptions!r} answered "
                     f"{result.status}, brute force says {expected} "
                     f"{_replay('assumptions', case_seed)}")


# --------------------------------------------------------------------------- #
# (b) Word-level differential: check_sat vs brute-force evaluation
# --------------------------------------------------------------------------- #
class TestWordLevelDifferential:
    def test_check_sat_agrees_with_brute_force_on_random_formulas(self):
        for index in range(BV_CASES):
            case_seed = _case_seed("bv", index)
            rng = random.Random(case_seed)
            variables = {"a": rng.randint(1, 3), "b": rng.randint(1, 3)}
            constraint = _random_expr(rng, variables, 1, rng.randint(1, 4))
            expected = "unsat"
            for assignment in _assignments(variables):
                if evaluate(constraint, assignment):
                    expected = "sat"
                    break
            result = check_sat(constraint, solver=SmtSolver(seed=case_seed))
            assert result.status == expected, \
                (f"check_sat answered {result.status}, brute force says "
                 f"{expected} on {constraint!r} {_replay('bv', case_seed)}")
            if result.is_sat:
                witness = {name: result.model.get(name, 0)
                           for name in variables}
                assert evaluate(constraint, witness), \
                    (f"check_sat returned an invalid model {witness!r} on "
                     f"{constraint!r} {_replay('bv', case_seed)}")


# --------------------------------------------------------------------------- #
# (c) Clause-DB reduction differential: aggressive reduce vs brute force
# --------------------------------------------------------------------------- #
class TestReductionDifferential:
    def test_aggressive_reduction_agrees_with_brute_force(self):
        from repro.sat.solver import CDCLSolver

        reduced_cases = 0
        for index in range(max(1, CNF_CASES // 2)):
            case_seed = _case_seed("reduce", index)
            rng = random.Random(case_seed)
            cnf = _random_hard_cnf(rng)
            expected = _brute_force_cnf(cnf)
            solver = CDCLSolver(cnf, reduce_interval=2, max_lbd_keep=0)
            result = solver.solve()
            assert result.status == expected, \
                (f"reduced solver answered {result.status}, brute force says "
                 f"{expected} on {cnf.clauses!r} {_replay('reduce', case_seed)}")
            if result.is_sat:
                assignment = [None] + [bool(result.model.get(var, False))
                                       for var in range(1, cnf.num_vars + 1)]
                assert cnf.evaluate(assignment), \
                    (f"reduced solver returned an invalid model on "
                     f"{cnf.clauses!r} {_replay('reduce', case_seed)}")
            # Warm assumption solves on the reduced database.
            for _ in range(3):
                assumptions = [rng.randint(1, cnf.num_vars)
                               * (1 if rng.random() < 0.5 else -1)
                               for _ in range(rng.randint(1, 3))]
                with_units = CNF(num_vars=cnf.num_vars,
                                 clauses=cnf.clauses
                                 + [[lit] for lit in assumptions])
                expected = _brute_force_cnf(with_units)
                outcome = solver.solve(assumptions)
                assert outcome.status == expected, \
                    (f"reduced solver under {assumptions!r} answered "
                     f"{outcome.status}, brute force says {expected} "
                     f"{_replay('reduce', case_seed)}")
            if solver.reductions:
                reduced_cases += 1
        # The stream must genuinely exercise the reduction path — but only
        # a real sample can be held to that (a minimized repro run with
        # LAKEROAD_FUZZ_CNF_CASES=1 may legitimately never reduce).
        if CNF_CASES >= 20:
            assert reduced_cases > 0, "no case ever triggered a DB reduction"


# --------------------------------------------------------------------------- #
# (d) Packed-evaluation differential: PackedEvaluator vs scalar evaluate
# --------------------------------------------------------------------------- #
class TestPackedDifferential:
    def test_packed_evaluator_matches_scalar_lane_by_lane(self):
        constant_only = 0
        for index in range(PACKED_CASES):
            case_seed = _case_seed("packed", index)
            rng = random.Random(case_seed)
            variables = {f"v{i}": rng.randint(1, 9)
                         for i in range(rng.randint(1, 4))}
            width = rng.randint(1, 9)
            expr = _random_full_expr(rng, variables, width,
                                     rng.randint(2, 5))
            widths = var_widths(expr)
            if not widths:
                constant_only += 1
                continue
            lanes = rng.choice((1, 3, 17, 64, 64, 100))
            batch = [{name: rng.getrandbits(w)
                      for name, w in widths.items()} for _ in range(lanes)]
            words = PackedEvaluator(expr).evaluate_batch(batch)
            assert len(words) == expr.width, _replay("packed", case_seed)
            for lane, assignment in enumerate(batch):
                packed_value = unpack_lane(words, lane)
                scalar_value = evaluate(expr, assignment)
                assert packed_value == scalar_value, \
                    (f"lane {lane}: packed {packed_value} != scalar "
                     f"{scalar_value} on {expr!r} under {assignment!r} "
                     f"{_replay('packed', case_seed)}")
        # The generator must mostly produce expressions with free
        # variables, or the lane comparison is vacuous.
        if PACKED_CASES >= 20:
            assert constant_only < PACKED_CASES // 2, constant_only

    def test_aig_simulate_packed_matches_scalar(self):
        for index in range(max(1, PACKED_CASES // 3)):
            case_seed = _case_seed("aig-packed", index)
            rng = random.Random(case_seed)
            variables = {f"v{i}": rng.randint(1, 5)
                         for i in range(rng.randint(1, 3))}
            expr = _random_full_expr(rng, variables, rng.randint(1, 5),
                                     rng.randint(2, 4))
            blaster = BitBlaster()
            bits = blaster.blast(expr)
            aig = blaster.aig
            lanes = rng.choice((1, 17, 64))
            patterns = [{name: rng.getrandbits(1) for name in aig.inputs}
                        for _ in range(lanes)]
            input_words = {
                name: sum(patterns[i][name] << i for i in range(lanes))
                for name in aig.inputs
            }
            packed = aig.simulate_packed(input_words, bits, lanes=lanes)
            for i, pattern in enumerate(patterns):
                scalar = aig.simulate(pattern, bits)
                assert [(word >> i) & 1 for word in packed] == scalar, \
                    (f"pattern {i} diverged on {expr!r} "
                     f"{_replay('aig-packed', case_seed)}")


# --------------------------------------------------------------------------- #
# (e) Arena-vs-legacy differential: the flat-arena CDCL core must replay the
#     retired dict-based solver literal for literal
# --------------------------------------------------------------------------- #
class TestArenaLegacyDifferential:
    #: Knob sets spanning both branching orders, both restart policies,
    #: phase-saving on/off and three reduction aggressiveness levels.
    CONFIGS = (
        {},
        {"restart_policy": "geometric", "restart_base": 8, "var_decay": 0.85,
         "reduce_interval": 30, "max_lbd_keep": 2},
        {"branching": "static", "phase_saving": False, "default_phase": True,
         "reduce_interval": 20},
        {"default_phase": True, "restart_base": 4, "reduce_interval": 10,
         "max_lbd_keep": 0},
    )

    @staticmethod
    def _snapshot(solver, result):
        """Every externally observable artefact of one query, order included."""
        model = None if result.model is None else list(result.model.items())
        return (result.status, model, result.conflicts, result.decisions,
                result.propagations, result.restarts, list(solver.trail),
                solver.last_core, solver.learned_count,
                solver.clauses_deleted, solver.db_size_peak,
                solver.db_size_floor, solver.reductions,
                solver.propagations_total, solver.watcher_visits,
                solver.total_conflicts)

    def test_incremental_trajectories_are_bit_identical(self):
        from repro.sat.legacy import LegacyCDCLSolver
        from repro.sat.solver import CDCLSolver

        for index in range(max(1, CNF_CASES // 2)):
            case_seed = _case_seed("arena", index)
            rng = random.Random(case_seed)
            num_vars = rng.randint(4, 14)
            config = self.CONFIGS[index % len(self.CONFIGS)]
            arena = CDCLSolver(**config)
            legacy = LegacyCDCLSolver(**config)
            for batch in range(rng.randint(1, 4)):
                for _ in range(rng.randint(2, 5 * num_vars)):
                    clause = [rng.choice((-1, 1)) * rng.randint(1, num_vars)
                              for _ in range(rng.randint(1, 4))]
                    assert arena.add_clause(clause) == legacy.add_clause(clause), \
                        (f"add_clause({clause!r}) verdicts diverged "
                         f"{_replay('arena', case_seed)}")
                for query in range(rng.randint(1, 3)):
                    assumptions = [rng.choice((-1, 1)) * rng.randint(1, num_vars)
                                   for _ in range(rng.randint(0, 3))] \
                        if rng.random() < 0.5 else []
                    lhs = self._snapshot(arena, arena.solve(assumptions))
                    rhs = self._snapshot(legacy, legacy.solve(assumptions))
                    assert lhs == rhs, \
                        (f"batch {batch} query {query} under {assumptions!r}: "
                         f"arena {lhs!r} != legacy {rhs!r} "
                         f"{_replay('arena', case_seed)}")

    def test_unsat_cores_strengthen_to_unsat_in_every_engine(self):
        from repro.sat.dpll import DPLLSolver
        from repro.sat.legacy import LegacyCDCLSolver
        from repro.sat.solver import CDCLSolver

        cores_seen = 0
        for index in range(max(1, CNF_CASES // 2)):
            case_seed = _case_seed("arena-core", index)
            rng = random.Random(case_seed)
            cnf = _random_hard_cnf(rng)
            solver = CDCLSolver(cnf, reduce_interval=4, max_lbd_keep=0)
            solver.solve()  # warm the database (and likely reduce it)
            assumptions = [v if rng.random() < 0.5 else -v
                           for v in rng.sample(range(1, cnf.num_vars + 1),
                                               min(3, cnf.num_vars))]
            if not solver.solve(assumptions).is_unsat:
                continue
            core = solver.last_core
            assert core is not None and set(core) <= set(assumptions), \
                _replay("arena-core", case_seed)
            # Re-solve with the core asserted as units: still unsat under
            # the arena engine, the legacy engine and independent DPLL.
            strengthened = CNF(num_vars=cnf.num_vars,
                               clauses=cnf.clauses + [[lit] for lit in core])
            for engine in (CDCLSolver, LegacyCDCLSolver, DPLLSolver):
                assert engine(strengthened).solve().is_unsat, \
                    (f"{engine.__name__} found the strengthened CNF sat — "
                     f"core {core!r} is unsound "
                     f"{_replay('arena-core', case_seed)}")
            cores_seen += 1
        if CNF_CASES >= 20:
            assert cores_seen > 0, "no case ever produced an unsat core"

    def test_cegis_modes_on_legacy_solver_match_arena(self, monkeypatch):
        import repro.smt.solver as smt_solver
        from repro.sat.legacy import LegacyCDCLSolver

        def run_modes(obligation, holes, case_seed):
            results = {}
            for incremental in (False, True):
                for incremental_verify in (False, True):
                    outcome = synthesize(
                        [obligation], holes, incremental=incremental,
                        incremental_verify=incremental_verify,
                        solver=SmtSolver(seed=0), seed=case_seed & 0xFFFF,
                        max_iterations=256)
                    results[(incremental, incremental_verify)] = (
                        outcome.status, outcome.hole_values,
                        outcome.iterations, outcome.examples_used,
                        outcome.propagations)
            return results

        for index in range(max(1, CEGIS_CASES // 3)):
            case_seed = _case_seed("cegis-legacy", index)
            rng = random.Random(case_seed)
            width = rng.randint(1, 3)
            inputs = {"a": rng.randint(1, 3), "b": rng.randint(1, 2)}
            holes = {"h0": rng.randint(1, 3)}
            spec = _random_expr(rng, inputs, width, rng.randint(1, 3))
            sketch = _random_expr(rng, {**inputs, **holes}, width,
                                  rng.randint(1, 4))
            obligation = Obligation(spec=spec, sketch=sketch)
            arena_runs = run_modes(obligation, holes, case_seed)
            with monkeypatch.context() as patch:
                patch.setattr(smt_solver, "CDCLSolver", LegacyCDCLSolver)
                legacy_runs = run_modes(obligation, holes, case_seed)
            assert arena_runs == legacy_runs, \
                (f"CEGIS diverged between engines on spec={spec!r} "
                 f"sketch={sketch!r}: {arena_runs!r} != {legacy_runs!r} "
                 f"{_replay('cegis-legacy', case_seed)}")


# --------------------------------------------------------------------------- #
# (f) CEGIS differential: four mode combinations vs brute force
# --------------------------------------------------------------------------- #
class TestCegisDifferential:
    def test_mode_combinations_agree_and_match_brute_force(self):
        checked_sat = 0
        checked_unsat = 0
        for index in range(CEGIS_CASES):
            case_seed = _case_seed("cegis", index)
            rng = random.Random(case_seed)
            width = rng.randint(1, 3)
            inputs = {"a": rng.randint(1, 3), "b": rng.randint(1, 3)}
            holes = {"h0": rng.randint(1, 3)}
            if rng.random() < 0.5:
                holes["h1"] = rng.randint(1, 2)
            spec = _random_expr(rng, inputs, width, rng.randint(1, 3))
            sketch = _random_expr(rng, {**inputs, **holes}, width,
                                  rng.randint(1, 4))
            obligation = Obligation(spec=spec, sketch=sketch)

            outcomes = {}
            for incremental in (False, True):
                for incremental_verify in (False, True):
                    for reduced in (False, True):
                        # reduced=True re-runs the mode with the most
                        # aggressive clause-DB reduction settings; every
                        # combination must stay outcome-identical.
                        knobs = {"reduce_interval": 2, "max_lbd_keep": 0} \
                            if reduced else {}
                        outcomes[(incremental, incremental_verify, reduced)] = \
                            synthesize(
                                [obligation], holes,
                                incremental=incremental,
                                incremental_verify=incremental_verify,
                                solver=SmtSolver(seed=0),
                                seed=case_seed & 0xFFFF,
                                max_iterations=256, **knobs)
            base = outcomes[(False, False, False)]
            for key, outcome in outcomes.items():
                context = (f"mode {key} vs (False, False, False) on "
                           f"spec={spec!r} sketch={sketch!r} "
                           f"{_replay('cegis', case_seed)}")
                assert outcome.status == base.status, context
                assert outcome.hole_values == base.hole_values, context
                assert outcome.iterations == base.iterations, context
                assert outcome.examples_used == base.examples_used, context

            # Brute-force oracle over the (small) hole space.
            def implements(hole_assignment):
                return all(
                    evaluate(sketch, {**point, **hole_assignment})
                    == evaluate(spec, point)
                    for point in _assignments(inputs))

            assert base.status in ("sat", "unsat"), \
                (f"undeadlined CEGIS degraded to {base.status!r} "
                 f"({base.diagnostic!r}) {_replay('cegis', case_seed)}")
            if base.status == "sat":
                assert implements(base.hole_values), \
                    (f"returned holes {base.hole_values!r} do not implement "
                     f"spec={spec!r} sketch={sketch!r} "
                     f"{_replay('cegis', case_seed)}")
                checked_sat += 1
            else:
                assert not any(implements(assignment)
                               for assignment in _assignments(holes)), \
                    (f"CEGIS said unsat but a hole assignment exists for "
                     f"spec={spec!r} sketch={sketch!r} "
                     f"{_replay('cegis', case_seed)}")
                checked_unsat += 1
        # The generator must exercise both outcomes, or the oracle is idle.
        assert checked_sat > 0 and checked_unsat > 0, \
            (checked_sat, checked_unsat)


# --------------------------------------------------------------------------- #
# (g) Service QoS differential: served records vs serial under random churn
# --------------------------------------------------------------------------- #
@pytest.mark.skipif("fork" not in multiprocessing.get_all_start_methods(),
                    reason="requires the fork start method")
class TestServiceQosChurnDifferential:
    def test_served_records_survive_random_flood_and_resize_churn(self):
        from repro.engine.parallel import SessionSpec, run_sweep
        from repro.engine.service import (
            MapRequest, ServiceOverloaded, SolverService,
        )
        from repro.harness.runner import ExperimentConfig

        from _fixtures import small_workloads
        from loadgen import design_verilog

        def comparable(record):
            data = record.to_dict()
            data.pop("time_seconds")
            data.pop("solver_solve_seconds")
            data.pop("cache_hit")
            return data

        for index in range(QOS_CASES):
            case_seed = _case_seed("qos-churn", index)
            rng = random.Random(case_seed)
            benchmarks = small_workloads(4, seed=case_seed & 0xFFFF,
                                         max_width=6)
            config = ExperimentConfig(
                incremental=rng.random() < 0.5,
                incremental_verify=rng.random() < 0.5)
            serial = run_sweep(benchmarks, config, workers=1).records
            context = _replay("qos-churn", case_seed)

            # A deliberately twitchy service: random caps tight enough that
            # the flood can draw rejections, hysteresis small enough that
            # the pool resizes both ways mid-sweep.
            spec = SessionSpec.from_config(config)
            flood_indices = iter(rng.sample(range(64), 48))
            primary, flood, rejections = [], [], 0
            with SolverService(spec, workers=1,
                               max_pipe_backlog=rng.choice((1, 2)),
                               min_workers=1,
                               max_workers=rng.randint(2, 3),
                               max_pending=rng.randint(8, 14),
                               client_queue=rng.randint(4, 8),
                               scale_up_after=0.02,
                               idle_retire_seconds=rng.uniform(
                                   0.03, 0.08)) as service:
                for benchmark in benchmarks:
                    primary.append(service.map_benchmark(
                        benchmark, config, client="primary"))
                    for _ in range(rng.randint(0, 4)):
                        event = rng.random()
                        if event < 0.35:
                            # Duplicate of a sweep design: coalesces or hits
                            # the front cache; either way the restamped
                            # record must match the serial one.
                            twin = rng.choice(benchmarks)
                            try:
                                flood.append((twin.name,
                                              service.map_benchmark(
                                                  twin, config,
                                                  client=f"flood-"
                                                         f"{rng.randint(0, 1)}")))
                            except ServiceOverloaded:
                                rejections += 1
                        else:
                            # Distinct design with the cache off: consumes a
                            # real admission slot and may be rejected.
                            design_index = next(flood_indices)
                            request = MapRequest(
                                verilog=design_verilog(design_index, "z"),
                                arch=benchmarks[0].architecture,
                                template=config.template, use_cache=False,
                                benchmark=f"z{design_index}")
                            try:
                                flood.append((None, service.submit(
                                    request,
                                    client=f"flood-{rng.randint(0, 1)}")))
                            except ServiceOverloaded as exc:
                                rejections += 1
                                assert 50 <= exc.retry_after_ms <= 10_000, \
                                    context
                    if rng.random() < 0.5:
                        # Quiet gaps invite scale-down; the next burst then
                        # has to re-grow the pool.
                        time.sleep(rng.uniform(0.0, 0.08))
                served = [future.result(timeout=180) for future in primary]
                flood_served = [(name, future.result(timeout=180))
                                for name, future in flood]
                stats = service.stats()

            serial_by_name = {record.benchmark: record for record in serial}
            assert [comparable(r) for r in served] == \
                [comparable(r) for r in serial], \
                (f"served sweep diverged from serial under churn {context}")
            for name, record in flood_served:
                if name is not None:
                    assert comparable(record) == \
                        comparable(serial_by_name[name]), \
                        (f"coalesced duplicate of {name!r} diverged from "
                         f"the serial record {context}")
                else:
                    assert record.outcome in ("success", "unsat"), \
                        (f"churn request {record.benchmark!r} degraded to "
                         f"{record.outcome!r} {context}")
            assert 1 <= stats["workers"] <= stats["max_workers"], context
            assert stats["pool_peak"] <= stats["max_workers"], context
            assert stats["rejections"] == rejections, context
