"""Tests for bit-blasting, the AIG, CNF encoding and the SAT solvers."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bv import (
    bv, bvvar, bvadd, bvsub, bvmul, bvand, bvor, bvxor, bvite, bveq, bvne,
    bvult, bvslt, bvashr, bvlshr, bvshl, bvconcat, bvextract, zero_extend,
    sign_extend, evaluate,
)
from repro.bv.aig import AIG, FALSE_LIT, TRUE_LIT
from repro.bv.bitblast import bitblast
from repro.bv.cnf import aig_to_cnf
from repro.sat import CNF, CDCLSolver, DPLLSolver
from repro.sat.portfolio import SatPortfolio
from repro.sat.solver import _luby


class TestAig:
    def test_constants(self):
        aig = AIG()
        assert aig.and_gate(TRUE_LIT, TRUE_LIT) == TRUE_LIT
        assert aig.and_gate(FALSE_LIT, TRUE_LIT) == FALSE_LIT

    def test_structural_hashing(self):
        aig = AIG()
        a = aig.add_input("a")
        b = aig.add_input("b")
        assert aig.and_gate(a, b) == aig.and_gate(b, a)

    def test_complementary_inputs_fold_to_false(self):
        aig = AIG()
        a = aig.add_input("a")
        assert aig.and_gate(a, AIG.negate(a)) == FALSE_LIT

    def test_mux_selects(self):
        aig = AIG()
        s, a, b = aig.add_input("s"), aig.add_input("a"), aig.add_input("b")
        out = aig.mux(s, a, b)
        assert aig.simulate({"s": 1, "a": 1, "b": 0}, [out]) == [1]
        assert aig.simulate({"s": 0, "a": 1, "b": 0}, [out]) == [0]

    def test_xor_gate_truth_table(self):
        aig = AIG()
        a, b = aig.add_input("a"), aig.add_input("b")
        out = aig.xor_gate(a, b)
        for x in (0, 1):
            for y in (0, 1):
                assert aig.simulate({"a": x, "b": y}, [out]) == [x ^ y]


def _simulate_expression(expr, env):
    """Evaluate an expression through the AIG and compare with the word level."""
    aig, bits = bitblast(expr)
    bit_env = {}
    for name, value in env.items():
        for i in range(64):
            bit_env[f"{name}[{i}]"] = (value >> i) & 1
    inputs = {name: bit_env.get(name, 0) for name in aig.inputs}
    out_bits = aig.simulate(inputs, bits)
    return sum(bit << i for i, bit in enumerate(out_bits))


class TestBitBlasting:
    @pytest.mark.parametrize("builder,pyop", [
        (bvadd, lambda x, y, m: (x + y) & m),
        (bvsub, lambda x, y, m: (x - y) & m),
        (bvmul, lambda x, y, m: (x * y) & m),
        (bvand, lambda x, y, m: x & y),
        (bvor, lambda x, y, m: x | y),
        (bvxor, lambda x, y, m: x ^ y),
    ])
    def test_binary_operators(self, builder, pyop):
        rng = random.Random(7)
        for _ in range(20):
            width = rng.randint(1, 10)
            x, y = rng.getrandbits(width), rng.getrandbits(width)
            expr = builder(bvvar("x", width), bvvar("y", width))
            assert _simulate_expression(expr, {"x": x, "y": y}) == pyop(x, y, (1 << width) - 1)

    def test_comparisons(self):
        rng = random.Random(3)
        for _ in range(30):
            width = rng.randint(1, 8)
            x, y = rng.getrandbits(width), rng.getrandbits(width)
            env = {"x": x, "y": y}
            expr_u = bvult(bvvar("x", width), bvvar("y", width))
            expr_s = bvslt(bvvar("x", width), bvvar("y", width))
            assert _simulate_expression(expr_u, env) == evaluate(expr_u, env)
            assert _simulate_expression(expr_s, env) == evaluate(expr_s, env)

    def test_variable_shifts(self):
        rng = random.Random(11)
        for _ in range(30):
            width = rng.randint(2, 8)
            x, sh = rng.getrandbits(width), rng.getrandbits(width)
            env = {"x": x, "s": sh}
            for builder in (bvshl, bvlshr, bvashr):
                expr = builder(bvvar("x", width), bvvar("s", width))
                assert _simulate_expression(expr, env) == evaluate(expr, env)

    def test_mux_and_structure(self):
        rng = random.Random(5)
        for _ in range(30):
            width = rng.randint(1, 8)
            x, y = rng.getrandbits(width), rng.getrandbits(width)
            env = {"x": x, "y": y}
            expr = bvite(bvult(bvvar("x", width), bvvar("y", width)),
                         bvconcat(bvvar("x", width), bvvar("y", width)),
                         sign_extend(bvvar("y", width), width))
            assert _simulate_expression(expr, env) == evaluate(expr, env)

    @given(st.integers(min_value=1, max_value=10), st.data())
    @settings(max_examples=50, deadline=None)
    def test_bitblast_agrees_with_evaluator(self, width, data):
        x = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        y = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        expr = bvand(bvmul(bvadd(bvvar("x", width), bvvar("y", width)), bvvar("y", width)),
                     zero_extend(bvextract(width - 1, 0, bvvar("x", width)), 0))
        env = {"x": x, "y": y}
        assert _simulate_expression(expr, env) == evaluate(expr, env)


class TestCnf:
    def test_dimacs_roundtrip(self):
        cnf = CNF()
        cnf.add_clause([1, -2])
        cnf.add_clause([2, 3])
        text = cnf.to_dimacs()
        parsed = CNF.from_dimacs(text)
        assert parsed.clauses == cnf.clauses
        assert parsed.num_vars == cnf.num_vars

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            CNF().add_clause([0])

    def test_evaluate_assignment(self):
        cnf = CNF(clauses=[[1, 2], [-1, 2]])
        assert cnf.evaluate([None, False, True])
        assert not cnf.evaluate([None, True, False])


class TestLuby:
    def test_prefix(self):
        assert [_luby(i) for i in range(1, 16)] == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]


def _random_cnf(rng, num_vars, num_clauses):
    cnf = CNF(num_vars=num_vars)
    for _ in range(num_clauses):
        clause_length = rng.randint(1, 3)
        clause = []
        for _ in range(clause_length):
            var = rng.randint(1, num_vars)
            clause.append(var if rng.random() < 0.5 else -var)
        cnf.add_clause(clause)
    return cnf


class TestSatSolvers:
    def test_trivially_sat(self):
        cnf = CNF(clauses=[[1], [2, -1]])
        result = CDCLSolver(cnf).solve()
        assert result.is_sat
        assert cnf.evaluate([None] + [result.model[v] for v in range(1, cnf.num_vars + 1)])

    def test_trivially_unsat(self):
        cnf = CNF(clauses=[[1], [-1]])
        assert CDCLSolver(cnf).solve().is_unsat
        assert DPLLSolver(cnf).solve().is_unsat

    def test_assumptions(self):
        cnf = CNF(clauses=[[1, 2]])
        assert CDCLSolver(cnf).solve(assumptions=[-1, -2]).is_unsat
        assert CDCLSolver(cnf).solve(assumptions=[-1]).is_sat

    def test_pigeonhole_unsat(self):
        # 3 pigeons, 2 holes: variable p(i,h) = 2*i + h + 1.
        cnf = CNF()
        for pigeon in range(3):
            cnf.add_clause([2 * pigeon + 1, 2 * pigeon + 2])
        for hole in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    cnf.add_clause([-(2 * p1 + hole + 1), -(2 * p2 + hole + 1)])
        assert CDCLSolver(cnf).solve().is_unsat
        assert DPLLSolver(cnf).solve().is_unsat

    def test_cdcl_agrees_with_dpll_on_random_formulas(self):
        rng = random.Random(0)
        for trial in range(40):
            cnf = _random_cnf(rng, num_vars=rng.randint(3, 9), num_clauses=rng.randint(3, 25))
            cdcl = CDCLSolver(cnf.copy()).solve()
            dpll = DPLLSolver(cnf.copy()).solve()
            assert cdcl.status == dpll.status, cnf.to_dimacs()
            if cdcl.is_sat:
                assignment = [None] + [cdcl.model[v] for v in range(1, cnf.num_vars + 1)]
                assert cnf.evaluate(assignment)

    def test_portfolio_returns_winner(self):
        cnf = CNF(clauses=[[1, 2], [-1], [-2, 3]])
        result, winner = SatPortfolio().solve(cnf)
        assert result.is_sat
        assert winner in ("cdcl", "dpll")

    def test_miter_of_equivalent_circuits_is_unsat(self):
        width = 5
        a, b = bvvar("a", width), bvvar("b", width)
        lhs = bvadd(a, b)
        rhs = bvsub(bvadd(bvadd(a, b), b), b)
        miter = bvne(lhs, rhs)
        aig, bits = bitblast(miter)
        cnf, _ = aig_to_cnf(aig, bits)
        assert CDCLSolver(cnf).solve().is_unsat

    def test_miter_of_different_circuits_is_sat(self):
        width = 5
        a, b = bvvar("a", width), bvvar("b", width)
        miter = bvne(bvadd(a, b), bvor(a, b))
        aig, bits = bitblast(miter)
        cnf, input_vars = aig_to_cnf(aig, bits)
        result = CDCLSolver(cnf).solve()
        assert result.is_sat
