"""Tests for the unified mapping-engine layer: the Budget/Outcome model,
the solver-backend registry, the concurrent portfolio race, the synthesis
cache and the MappingSession lifecycle."""

import time

import pytest

from repro.engine import (
    DEFAULT_TIMEOUTS,
    Budget,
    SolverBackend,
    SynthesisCache,
    available_backends,
    backend_by_name,
    default_backend_names,
    laptop_timeouts,
    mapping_status,
    program_fingerprint,
    register_backend,
    timeout_for,
    unregister_backend,
)
from repro.engine.session import MappingSession
from repro.harness.runner import ExperimentConfig, run_lakeroad
from repro.hdl.behavioral import verilog_to_behavioral
from repro.sat.cnf import CNF
from repro.sat.portfolio import SatPortfolio, default_portfolio
from repro.sat.solver import SatResult
from repro.workloads import sample_workloads

from _fixtures import ADD4, AND4, MUL8


class TestBudget:
    def test_paper_timeouts_are_the_single_source(self):
        assert DEFAULT_TIMEOUTS["xilinx-ultrascale-plus"] == 120.0
        assert DEFAULT_TIMEOUTS["lattice-ecp5"] == 40.0
        assert DEFAULT_TIMEOUTS["intel-cyclone10lp"] == 20.0

    def test_laptop_scale_derives_from_paper_table(self):
        laptop = laptop_timeouts()
        for arch, seconds in DEFAULT_TIMEOUTS.items():
            assert laptop[arch] == pytest.approx(seconds / 2)

    def test_experiment_config_defaults_derive_from_engine(self):
        config = ExperimentConfig()
        assert config.timeout_for("xilinx-ultrascale-plus") == \
            pytest.approx(laptop_timeouts()["xilinx-ultrascale-plus"])

    def test_timeout_for_prefers_overrides(self):
        assert timeout_for("sofa", {"sofa": 7.0}) == 7.0
        assert timeout_for("sofa") == DEFAULT_TIMEOUTS["sofa"]
        assert timeout_for("never-heard-of-it", default=3.0) == 3.0

    def test_budget_lifecycle(self):
        budget = Budget(timeout_seconds=100.0)
        assert not budget.started
        budget.start()
        assert budget.started
        assert 0 < budget.remaining() <= 100.0
        assert not budget.expired()

    def test_budget_start_is_idempotent(self):
        budget = Budget(timeout_seconds=1.0).start()
        first_deadline = budget.deadline
        budget.start()
        assert budget.deadline == first_deadline

    def test_unlimited_budget_never_expires(self):
        budget = Budget.unlimited().start()
        assert budget.deadline is None
        assert budget.remaining() is None
        assert not budget.expired()

    def test_for_architecture_override_wins(self):
        assert Budget.for_architecture("xilinx-ultrascale-plus",
                                       override=5.0).timeout_seconds == 5.0
        assert Budget.for_architecture("xilinx-ultrascale-plus").timeout_seconds == 120.0

    def test_mapping_status_conversion(self):
        assert mapping_status("sat") == "success"
        assert mapping_status("unsat") == "unsat"
        assert mapping_status("unknown") == "timeout"
        with pytest.raises(ValueError):
            mapping_status("maybe")


class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        assert {"cdcl", "dpll"} <= set(available_backends())
        assert default_backend_names()[0] == "cdcl"

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError):
            backend_by_name("bitwuzla")

    def test_registered_backend_joins_default_portfolio(self):
        def run(cnf, deadline, assumptions, should_stop=None):
            return SatResult(status="unknown")

        backend = SolverBackend("test-noop", run, default=True)
        register_backend(backend)
        try:
            assert "test-noop" in [m.name for m in default_portfolio()]
            with pytest.raises(ValueError):
                register_backend(SolverBackend("test-noop", run))
        finally:
            unregister_backend("test-noop")
        assert "test-noop" not in available_backends()

    def test_cancellation_detection(self):
        named = SolverBackend(
            "test-named",
            lambda c, d, a, should_stop=None: SatResult(status="unknown"),
            default=False)
        keyword_only = SolverBackend(
            "test-kwonly",
            lambda c, d, a, *, should_stop=None: SatResult(status="unknown"),
            default=False)
        legacy = SolverBackend("test-legacy", lambda c, d, a: SatResult(status="unknown"),
                               default=False)
        other_fourth = SolverBackend(
            "test-other", lambda c, d, a, verbose=False: SatResult(status="unknown"),
            default=False)
        assert named.supports_cancellation
        assert keyword_only.supports_cancellation
        assert not legacy.supports_cancellation
        assert not other_fourth.supports_cancellation
        # The hook is passed by keyword, so even keyword-only signatures work.
        assert keyword_only.solve(CNF(clauses=[[1]]), None, (), lambda: False).is_unknown


class TestPortfolioRace:
    def _satisfiable_cnf(self):
        return CNF(clauses=[[1, 2], [-1], [-2, 3]])

    def test_fast_member_beats_slow_member(self):
        """The race returns the first definitive answer without waiting for
        (or being confused by) a slower member."""
        slow_calls = []

        def fast(cnf, deadline, assumptions, should_stop=None):
            return SatResult(status="unsat")

        def slow(cnf, deadline, assumptions, should_stop=None):
            slow_calls.append(time.monotonic())
            for _ in range(200):
                if should_stop is not None and should_stop():
                    return SatResult(status="unknown")
                time.sleep(0.01)
            return SatResult(status="sat", model={})

        portfolio = SatPortfolio([
            SolverBackend("slow", slow),
            SolverBackend("fast", fast),
        ])
        start = time.monotonic()
        result, winner = portfolio.solve(self._satisfiable_cnf())
        elapsed = time.monotonic() - start
        assert winner == "fast"
        assert result.is_unsat
        # The slow member (2 s of sleeping) must not gate the return.
        assert elapsed < 1.0
        assert portfolio.win_counts() == {"fast": 1}

    def test_staggered_member_never_starts_when_race_is_decided(self):
        started = []

        def fast(cnf, deadline, assumptions, should_stop=None):
            return SatResult(status="sat", model={})

        def lazy(cnf, deadline, assumptions, should_stop=None):
            started.append(True)
            return SatResult(status="sat", model={})

        portfolio = SatPortfolio([
            SolverBackend("fast", fast),
            SolverBackend("lazy", lazy, stagger=30.0),
        ])
        result, winner = portfolio.solve(self._satisfiable_cnf())
        assert winner == "fast" and result.is_sat
        assert not started

    def test_unknown_members_do_not_win(self):
        def unknown(cnf, deadline, assumptions, should_stop=None):
            return SatResult(status="unknown")

        def eventually(cnf, deadline, assumptions, should_stop=None):
            time.sleep(0.05)
            return SatResult(status="sat", model={})

        portfolio = SatPortfolio([
            SolverBackend("unknown", unknown),
            SolverBackend("eventually", eventually),
        ])
        result, winner = portfolio.solve(self._satisfiable_cnf())
        assert winner == "eventually"
        assert result.is_sat

    def test_crashing_member_loses_race(self):
        def crash(cnf, deadline, assumptions, should_stop=None):
            raise RuntimeError("boom")

        def steady(cnf, deadline, assumptions, should_stop=None):
            return SatResult(status="unsat")

        portfolio = SatPortfolio([
            SolverBackend("crash", crash),
            SolverBackend("steady", steady),
        ])
        result, winner = portfolio.solve(self._satisfiable_cnf())
        assert winner == "steady"
        assert result.is_unsat

    def test_all_members_crashing_raises(self):
        """A systematic bug must surface, not masquerade as a timeout."""
        def crash(cnf, deadline, assumptions, should_stop=None):
            raise RuntimeError("boom")

        portfolio = SatPortfolio([
            SolverBackend("crash-a", crash),
            SolverBackend("crash-b", crash),
        ])
        with pytest.raises(RuntimeError, match="boom"):
            portfolio.solve(self._satisfiable_cnf())

    def test_stagger_capped_at_half_remaining_budget(self):
        """A staggered fallback still joins the race when the budget is
        smaller than its configured head start."""
        def unknown(cnf, deadline, assumptions, should_stop=None):
            return SatResult(status="unknown")

        def fallback(cnf, deadline, assumptions, should_stop=None):
            return SatResult(status="sat", model={})

        portfolio = SatPortfolio([
            SolverBackend("primary", unknown),
            SolverBackend("fallback", fallback, stagger=60.0),
        ])
        result, winner = portfolio.solve(self._satisfiable_cnf(),
                                         deadline=time.monotonic() + 1.0)
        assert winner == "fallback"
        assert result.is_sat

    def test_sequential_mode_preserved(self):
        portfolio = SatPortfolio(concurrent=False)
        result, winner = portfolio.solve(self._satisfiable_cnf())
        assert result.is_sat
        assert winner == "cdcl"

    def test_stagger_does_not_hold_timeout_hostage(self):
        """A timing-out query returns at its deadline, not after the
        staggered fallback member's full head start."""
        def unknown(cnf, deadline, assumptions, should_stop=None):
            return SatResult(status="unknown")

        portfolio = SatPortfolio([
            SolverBackend("primary", unknown),
            SolverBackend("fallback", unknown, stagger=30.0),
        ])
        start = time.monotonic()
        result, winner = portfolio.solve(self._satisfiable_cnf(),
                                         deadline=time.monotonic() + 0.2)
        elapsed = time.monotonic() - start
        assert result.is_unknown and winner == "none"
        assert elapsed < 5.0  # far below the 30 s stagger


class TestSynthesisCacheUnit:
    def test_fingerprint_stable_across_parses(self):
        first = verilog_to_behavioral(AND4).program
        second = verilog_to_behavioral(AND4).program
        assert first.ids != second.ids  # fresh builder ids each parse...
        assert program_fingerprint(first) == program_fingerprint(second)

    def test_fingerprint_distinguishes_designs(self):
        and4 = verilog_to_behavioral(AND4).program
        add4 = verilog_to_behavioral(ADD4).program
        assert program_fingerprint(and4) != program_fingerprint(add4)

    def test_lru_eviction(self):
        cache = SynthesisCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)
        assert cache.get("b") is None  # evicted
        assert cache.get("a") == 1
        assert len(cache) == 2

    def test_counters(self):
        cache = SynthesisCache()
        assert cache.get("missing") is None
        cache.put("key", "value")
        assert cache.get("key") == "value"
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}


class TestMappingSession:
    def test_success_propagates_from_cegis_to_result(self):
        session = MappingSession()
        result = session.map_verilog(AND4, template="bitwise", arch="sofa",
                                     timeout_seconds=60)
        assert result.status == "success"
        assert result.synthesis is not None
        assert result.synthesis.status == "sat"
        assert result.program is not None and result.verilog

    def test_unsat_propagates_from_cegis_to_result(self):
        session = MappingSession()
        result = session.map_verilog(ADD4, template="bitwise", arch="sofa",
                                     timeout_seconds=60)
        assert result.status == "unsat"
        assert result.synthesis is not None
        assert result.synthesis.status == "unsat"
        assert result.program is None

    def test_timeout_propagates_from_cegis_to_result(self):
        session = MappingSession()
        # An already-expired budget forces CEGIS to report unknown, which
        # must surface unchanged as the mapping-level "timeout".
        result = session.map_verilog(MUL8, template="dsp", arch="intel-cyclone10lp",
                                     budget=Budget(timeout_seconds=0.0),
                                     validate=False)
        assert result.status == "timeout"
        assert result.synthesis is not None
        assert result.synthesis.status == "unknown"

    def test_unmappable_template_reports_unsat(self):
        session = MappingSession()
        result = session.map_verilog(MUL8, template="dsp", arch="sofa")
        assert result.status == "unsat"

    def test_cache_hit_returns_identical_result(self):
        session = MappingSession()
        cold = session.map_verilog(AND4, template="bitwise", arch="sofa",
                                   timeout_seconds=60)
        warm = session.map_verilog(AND4, template="bitwise", arch="sofa",
                                   timeout_seconds=60)
        assert not cold.cache_hit
        assert warm.cache_hit
        assert warm.status == cold.status
        assert warm.verilog == cold.verilog
        assert warm.hole_values == cold.hole_values
        assert warm.resources == cold.resources
        assert warm.program is cold.program
        assert session.cache_stats()["hits"] == 1
        assert session.cache_stats()["misses"] >= 1

    def test_cache_hits_are_isolated_from_caller_mutation(self):
        session = MappingSession()
        cold = session.map_verilog(AND4, template="bitwise", arch="sofa",
                                   timeout_seconds=60)
        cold.hole_values["tampered"] = 1
        cold.verilog = "// tampered"
        warm = session.map_verilog(AND4, template="bitwise", arch="sofa",
                                   timeout_seconds=60)
        assert warm.cache_hit
        assert "tampered" not in warm.hole_values
        assert warm.verilog != "// tampered"

    def test_timeout_results_are_not_cached(self):
        """A timeout is wall-clock-dependent; one transient occurrence must
        not become sticky for the whole session."""
        session = MappingSession()
        first = session.map_verilog(MUL8, template="dsp", arch="intel-cyclone10lp",
                                    timeout_seconds=0.0, validate=False)
        assert first.status == "timeout"
        second = session.map_verilog(MUL8, template="dsp", arch="intel-cyclone10lp",
                                     timeout_seconds=0.0, validate=False)
        assert not second.cache_hit
        assert session.cache_stats()["entries"] == 0

    def test_cached_synthesis_outcome_is_isolated(self):
        session = MappingSession()
        cold = session.map_verilog(AND4, template="bitwise", arch="sofa",
                                   timeout_seconds=60)
        cold.synthesis.hole_values["tampered"] = 1
        cold.resources.luts += 99
        warm = session.map_verilog(AND4, template="bitwise", arch="sofa",
                                   timeout_seconds=60)
        assert warm.cache_hit
        assert "tampered" not in warm.synthesis.hole_values
        assert warm.resources.luts == cold.resources.luts - 99

    def test_session_adopts_injected_solvers_portfolio(self):
        from repro.smt.solver import SmtSolver

        solver = SmtSolver()
        session = MappingSession(solver=solver)
        assert session.portfolio is solver.portfolio

    def test_externally_started_budget_is_never_cached(self):
        """A partially-consumed caller budget must not poison the cache:
        its results are not comparable to a fresh full-window run."""
        session = MappingSession()
        shared = Budget(timeout_seconds=60.0).start()
        first = session.map_verilog(AND4, template="bitwise", arch="sofa",
                                    budget=shared)
        assert first.status == "success"
        fresh = session.map_verilog(AND4, template="bitwise", arch="sofa",
                                    timeout_seconds=60)
        assert not fresh.cache_hit  # the shared-budget run was not stored

    def test_cache_respects_budget_key(self):
        session = MappingSession()
        session.map_verilog(AND4, template="bitwise", arch="sofa", timeout_seconds=60)
        other = session.map_verilog(AND4, template="bitwise", arch="sofa",
                                    timeout_seconds=61)
        assert not other.cache_hit

    def test_cache_can_be_disabled(self):
        session = MappingSession(enable_cache=False)
        session.map_verilog(AND4, template="bitwise", arch="sofa", timeout_seconds=60)
        again = session.map_verilog(AND4, template="bitwise", arch="sofa",
                                    timeout_seconds=60)
        assert not again.cache_hit
        assert session.cache_stats() == {"hits": 0, "misses": 0, "entries": 0}

    def test_default_budget_comes_from_engine_table(self):
        session = MappingSession()
        budget = session.budget_for("lattice-ecp5")
        assert budget.timeout_seconds == DEFAULT_TIMEOUTS["lattice-ecp5"]

    def test_harness_sweep_hits_cache_on_second_run(self):
        session = MappingSession()
        benchmarks = sample_workloads("intel-cyclone10lp", 2, seed=0, max_width=4)
        config = ExperimentConfig(validate=False)
        first = run_lakeroad(benchmarks, config, session=session)
        second = run_lakeroad(benchmarks, config, session=session)
        assert [r.outcome for r in first] == [r.outcome for r in second]
        assert not any(r.cache_hit for r in first)
        assert all(r.cache_hit for r in second)
        assert session.cache_stats()["hits"] == len(benchmarks)

    def test_portfolio_wins_tracked_per_session(self):
        session = MappingSession()
        session.map_verilog(ADD4, template="bitwise", arch="sofa", timeout_seconds=60)
        wins = session.portfolio_wins()
        assert all(isinstance(count, int) for count in wins.values())
