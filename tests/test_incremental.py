"""Tests for the incremental solving layer: persistent CDCL, the shared
AIG/CNF context, the incremental SMT session, and incremental CEGIS.

The load-bearing property throughout is *mode equality*: an incremental
(warm, clause-reusing) run must produce exactly the same answers as a
from-scratch run — statuses always, and models canonically (the session
refines every model to the lexicographically smallest input assignment,
which is a property of the formula rather than of the search)."""

import random
import time

import pytest

from repro.bv import (
    bv, bvvar, bvmul, bvand, bvor, bvxor, bvite, bveq, bvne, bvult,
    bvconcat, bvextract, bvlshr, zero_extend,
)
from repro.bv.bitblast import IncrementalContext
from repro.engine.budget import Budget
from repro.engine.session import MappingSession
from repro.hdl.behavioral import verilog_to_behavioral
from repro.sat.cnf import CNF
from repro.sat.solver import CDCLSolver
from repro.smt.cegis import Obligation, synthesize
from repro.smt.solver import IncrementalSmtSession, SmtSolver


def _random_clauses(rng, num_vars, num_clauses):
    clauses = []
    for _ in range(num_clauses):
        clause = []
        for _ in range(rng.randint(1, 3)):
            var = rng.randint(1, num_vars)
            clause.append(var if rng.random() < 0.5 else -var)
        clauses.append(clause)
    return clauses


class TestIncrementalCdcl:
    def test_add_clause_after_solve_matches_fresh_solver(self):
        rng = random.Random(7)
        for _ in range(60):
            num_vars = rng.randint(3, 10)
            clauses = _random_clauses(rng, num_vars, rng.randint(3, 28))
            cut = rng.randint(0, len(clauses))
            warm = CDCLSolver(CNF(num_vars=num_vars, clauses=clauses[:cut]))
            warm.solve()
            for clause in clauses[cut:]:
                warm.add_clause(clause)
            fresh = CDCLSolver(CNF(num_vars=num_vars, clauses=clauses))
            warm_result, fresh_result = warm.solve(), fresh.solve()
            assert warm_result.status == fresh_result.status
            if warm_result.is_sat:
                assignment = [None] + [warm_result.model[v]
                                       for v in range(1, num_vars + 1)]
                assert CNF(num_vars=num_vars, clauses=clauses).evaluate(assignment)

    def test_assumption_solve_matches_fresh_solver_with_units(self):
        rng = random.Random(13)
        for _ in range(60):
            num_vars = rng.randint(3, 10)
            clauses = _random_clauses(rng, num_vars, rng.randint(3, 28))
            warm = CDCLSolver(CNF(num_vars=num_vars, clauses=clauses))
            warm.solve()  # warm it up: learned clauses + phases retained
            assumptions = []
            for _ in range(rng.randint(1, 3)):
                var = rng.randint(1, num_vars)
                assumptions.append(var if rng.random() < 0.5 else -var)
            result = warm.solve(assumptions=assumptions)
            fresh = CDCLSolver(CNF(num_vars=num_vars,
                                   clauses=clauses + [[a] for a in assumptions]))
            assert result.status == fresh.solve().status

    def test_unsat_core_is_a_real_core(self):
        rng = random.Random(29)
        cores_seen = 0
        for _ in range(80):
            num_vars = rng.randint(3, 9)
            clauses = _random_clauses(rng, num_vars, rng.randint(4, 26))
            solver = CDCLSolver(CNF(num_vars=num_vars, clauses=clauses))
            assumptions = []
            for var in rng.sample(range(1, num_vars + 1), min(3, num_vars)):
                assumptions.append(var if rng.random() < 0.5 else -var)
            result = solver.solve(assumptions=assumptions)
            if not result.is_unsat:
                continue
            core = solver.last_core
            assert core is not None
            assert set(core) <= set(assumptions)
            check = CDCLSolver(CNF(num_vars=num_vars,
                                   clauses=clauses + [[lit] for lit in core]))
            assert check.solve().is_unsat
            cores_seen += 1
        assert cores_seen > 0  # the sample must actually exercise the path

    def test_solver_reusable_after_assumption_unsat(self):
        cnf = CNF(clauses=[[1, 2], [-1, 2]])
        solver = CDCLSolver(cnf)
        assert solver.solve(assumptions=[-2]).is_unsat
        assert solver.last_core == [-2]
        result = solver.solve()
        assert result.is_sat
        assert result.model[2] is True

    def test_empty_start_grows_incrementally(self):
        solver = CDCLSolver()
        assert solver.solve().is_sat
        solver.add_clause([1, 2])
        solver.add_clause([-1])
        result = solver.solve()
        assert result.is_sat and result.model[2] is True
        solver.add_clause([-2])
        assert solver.solve().is_unsat
        # Root-level unsat is permanent.
        assert solver.solve().is_unsat

    def test_learned_clauses_retained_across_calls(self):
        rng = random.Random(3)
        # A pigeonhole-flavoured instance that forces real conflicts.
        clauses = _random_clauses(rng, 12, 60)
        solver = CDCLSolver(CNF(num_vars=12, clauses=clauses))
        solver.solve()
        first = solver.learned_count
        solver.solve(assumptions=[1, 2])
        assert solver.learned_count >= first  # never reset between calls

    def test_configuration_knobs_are_validated(self):
        with pytest.raises(ValueError):
            CDCLSolver(branching="magic")
        with pytest.raises(ValueError):
            CDCLSolver(restart_policy="never")

    def test_diversified_configs_agree_on_status(self):
        rng = random.Random(17)
        configs = [
            {},
            {"restart_base": 8, "var_decay": 0.85},
            {"restart_policy": "geometric", "restart_base": 128,
             "default_phase": True},
            {"branching": "static", "phase_saving": False},
        ]
        for _ in range(25):
            num_vars = rng.randint(3, 9)
            clauses = _random_clauses(rng, num_vars, rng.randint(3, 24))
            statuses = {CDCLSolver(CNF(num_vars=num_vars, clauses=clauses),
                                   **config).solve().status
                        for config in configs}
            assert len(statuses) == 1


class TestIncrementalContext:
    def test_literals_are_stable_across_assertions(self):
        context = IncrementalContext()
        hole = bvvar("h", 4)
        context.assert_true(bveq(bvand(hole, bv(3, 4)), bv(1, 4)))
        first = dict(context.input_vars())
        clauses_before = context.cnf.num_clauses
        context.assert_true(bvult(hole, bv(9, 4)))
        second = context.input_vars()
        for name, var in first.items():
            assert second[name] == var  # same bit -> same CNF literal
        # The second obligation only appended clauses; nothing was rebuilt.
        assert context.cnf.num_clauses > clauses_before

    def test_replaying_assertions_reproduces_the_namespace(self):
        constraints = [
            bveq(bvand(bvvar("h", 4), bv(3, 4)), bv(1, 4)),
            bvult(bvvar("h", 4), bv(9, 4)),
            bvne(bvvar("g", 3), bv(0, 3)),
        ]
        incremental = IncrementalContext()
        for constraint in constraints:
            incremental.assert_true(constraint)
        replayed = IncrementalContext()
        for constraint in constraints:
            replayed.assert_true(constraint)
        assert incremental.input_vars() == replayed.input_vars()
        assert incremental.cnf.clauses == replayed.cnf.clauses


class TestIncrementalSmtSession:
    def test_constraints_accumulate(self):
        session = IncrementalSmtSession()
        hole = bvvar("h", 4)
        session.assert_constraints([bvult(hole, bv(9, 4))])
        first = session.check()
        assert first.is_sat
        session.assert_constraints([bvult(bv(5, 4), hole)])
        second = session.check()
        assert second.is_sat
        assert 5 < second.model["h"] < 9
        session.assert_constraints([bveq(hole, bv(2, 4))])
        assert session.check().is_unsat

    def test_models_are_canonical_lex_min(self):
        # h & 3 == 2 leaves bits 2..3 free; the canonical model zeroes them.
        session = IncrementalSmtSession()
        hole = bvvar("h", 4)
        session.assert_constraints([bveq(bvand(hole, bv(3, 4)), bv(2, 4))])
        assert session.check().model["h"] == 2

    def test_warm_session_matches_fresh_replay(self):
        batches = [
            [bvult(bvvar("h", 6), bv(40, 6))],
            [bvult(bv(17, 6), bvvar("h", 6))],
            [bvne(bvvar("h", 6), bv(20, 6)), bvne(bvvar("h", 6), bv(18, 6))],
        ]
        warm = IncrementalSmtSession()
        warm_models = []
        for batch in batches:
            warm.assert_constraints(batch)
            warm_models.append(warm.check().model.as_dict())
        for upto in range(1, len(batches) + 1):
            fresh = IncrementalSmtSession()
            for batch in batches[:upto]:
                fresh.assert_constraints(batch)
            assert fresh.check().model.as_dict() == warm_models[upto - 1]

    def test_restart_preserves_answers(self):
        session = IncrementalSmtSession()
        hole = bvvar("h", 5)
        session.assert_constraints([bvult(bv(6, 5), hole), bvult(hole, bv(30, 5))])
        before = session.check().model["h"]
        session.restart()
        assert session.check().model["h"] == before
        assert session.restarts == 1

    def test_constant_false_constraint_is_root_unsat(self):
        session = IncrementalSmtSession()
        session.assert_constraints([bv(0, 1)])
        assert session.check().is_unsat
        session.assert_constraints([bv(1, 1)])
        assert session.check().is_unsat  # permanently

    def test_expired_deadline_reports_unknown(self):
        session = IncrementalSmtSession()
        session.assert_constraints([bvne(bvvar("h", 4), bv(0, 4))])
        assert session.check(deadline=time.monotonic() - 1.0).is_unknown


def _assert_modes_equal(obligations, hole_widths, **kwargs):
    """All four (incremental x incremental_verify) combinations must agree
    on status, hole values, iteration and example counts."""
    results = {}
    for incremental in (False, True):
        for incremental_verify in (False, True):
            results[(incremental, incremental_verify)] = synthesize(
                obligations, hole_widths, incremental=incremental,
                incremental_verify=incremental_verify,
                solver=SmtSolver(seed=0), **kwargs)
    scratch, warm = results[(False, False)], results[(True, False)]
    for key, result in results.items():
        assert result.status == scratch.status, key
        assert result.hole_values == scratch.hole_values, key
        assert result.iterations == scratch.iterations, key
        assert result.examples_used == scratch.examples_used, key
        assert result.incremental is key[0]
        assert result.incremental_verify is key[1]
    assert warm.incremental and not scratch.incremental
    return scratch, warm


class TestIncrementalCegis:
    def test_lut_synthesis_equal_across_modes(self):
        a, b = bvvar("a", 1), bvvar("b", 1)
        memory = bvvar("mem", 4)
        lut = bvextract(0, 0, bvlshr(memory, zero_extend(bvconcat(b, a), 2)))
        scratch, _ = _assert_modes_equal(
            [Obligation(bvxor(a, b), lut)], {"mem": 4})
        assert scratch.status == "sat"
        assert scratch.hole_values["mem"] == 0b0110

    def test_multi_iteration_threshold_equal_across_modes(self):
        width = 10
        x, k = bvvar("x", width), bvvar("k", width)
        scratch, warm = _assert_modes_equal(
            [Obligation(bvult(x, bv(700, width)), bvult(x, k))], {"k": width},
            random_probes=0, initial_random_examples=0)
        assert scratch.status == "sat"
        assert scratch.hole_values == {"k": 700}
        assert scratch.iterations >= 4  # genuinely multi-iteration

    def test_unsat_equal_across_modes(self):
        width = 8
        a, b, c = bvvar("a", width), bvvar("b", width), bvvar("c", width)
        selector = bvvar("sel", 1)
        product = bvmul(a, b)
        sketch = bvite(selector, bvand(product, c), bvor(product, c))
        scratch, _ = _assert_modes_equal(
            [Obligation(bvxor(bvmul(a, b), c), sketch)], {"sel": 1})
        assert scratch.status == "unsat"

    def test_workload_generator_designs_equal_across_modes(
            self, primitive_library, arch_loader, fast_benchmarks):
        from repro.core.sketch_gen import DesignInterface, generate_sketch
        from repro.core.synthesis import f_lr_star

        checked = 0
        for arch_name in ("intel-cyclone10lp", "lattice-ecp5"):
            architecture = arch_loader(arch_name)
            for bench in fast_benchmarks(3, architecture=arch_name):
                design = verilog_to_behavioral(bench.verilog)
                interface = DesignInterface(
                    input_widths=dict(design.input_widths),
                    output_width=design.output_width)
                sketch = generate_sketch("dsp", architecture, interface,
                                         primitive_library)
                outcomes = {}
                for incremental in (False, True):
                    for incremental_verify in (False, True):
                        outcomes[(incremental, incremental_verify)] = f_lr_star(
                            sketch, design.program, at_time=design.pipeline_depth,
                            cycles=1, timeout_seconds=60,
                            solver=SmtSolver(seed=0), incremental=incremental,
                            incremental_verify=incremental_verify)
                base = outcomes[(False, False)]
                for key, outcome in outcomes.items():
                    assert outcome.status == base.status, (bench.name, key)
                    assert outcome.hole_values == base.hole_values, \
                        (bench.name, key)
                    assert outcome.cegis_iterations == base.cegis_iterations, \
                        (bench.name, key)
                checked += 1
        assert checked == 6

    def test_mapping_session_incremental_knob(self, mul8_verilog):
        results = {}
        for incremental in (False, True):
            with MappingSession(enable_cache=False,
                                incremental=incremental) as session:
                results[incremental] = session.map_verilog(
                    mul8_verilog, template="dsp", arch="intel-cyclone10lp",
                    timeout_seconds=60)
        assert results[False].status == results[True].status == "success"
        assert results[False].hole_values == results[True].hole_values
        assert results[True].synthesis.incremental
        assert not results[False].synthesis.incremental

    def test_repeated_counterexample_degrades_to_unknown(self, monkeypatch):
        from repro.smt.equivalence import EquivalenceResult
        from repro.smt.model import Model
        import repro.smt.cegis as cegis_mod

        # A verifier that always returns the same bogus counterexample
        # simulates a buggy candidate solver; synthesize must degrade to
        # "unknown" with a diagnostic instead of raising.
        def broken_equivalence(lhs, rhs, deadline=None, solver=None, **kwargs):
            return EquivalenceResult(
                "different", Model({"a": 0, "b": 0}, {"a": 1, "b": 1}))

        monkeypatch.setattr(cegis_mod, "check_equivalence", broken_equivalence)
        a, b = bvvar("a", 1), bvvar("b", 1)
        hole = bvvar("h", 1)
        result = synthesize([Obligation(bvand(a, b), bvand(bvand(a, b), hole))],
                            {"h": 1})
        assert result.status == "unknown"
        assert "repeated counterexample" in result.diagnostic

    def test_incremental_stats_are_reported(self):
        width = 10
        x, k = bvvar("x", width), bvvar("k", width)
        m = bvvar("m", width)
        obligation = Obligation(
            bvand(bvult(x, bv(700, width)), bvult(bv(300, width), x)),
            bvand(bvult(x, k), bvult(m, x)))
        result = synthesize([obligation], {"k": width, "m": width},
                            incremental=True, random_probes=0,
                            initial_random_examples=0)
        assert result.succeeded and result.iterations >= 4
        assert result.candidate_time_seconds > 0
        # From-scratch mode never retains anything by definition.
        scratch = synthesize([obligation], {"k": width, "m": width},
                             incremental=False, random_probes=0,
                             initial_random_examples=0)
        assert scratch.clauses_retained == 0 and scratch.solver_restarts == 0

    def test_budget_flows_into_incremental_mode(self):
        width = 10
        x, k = bvvar("x", width), bvvar("k", width)
        budget = Budget(timeout_seconds=0.0).start()
        result = synthesize([Obligation(bvult(x, bv(700, width)), bvult(x, k))],
                            {"k": width}, budget=budget, incremental=True,
                            random_probes=0, initial_random_examples=0)
        assert result.status == "unknown"


class TestSweepEquality:
    def test_parallel_sweep_records_equal_across_modes(self, fast_benchmarks):
        from repro.engine.parallel import SessionSpec, run_sweep
        from repro.harness.runner import ExperimentConfig

        benchmarks = fast_benchmarks(4)
        records = {}
        for incremental in (False, True):
            config = ExperimentConfig(incremental=incremental)
            spec = SessionSpec(incremental=incremental, enable_cache=False)
            result = run_sweep(benchmarks, config, workers=2, session_spec=spec)
            records[incremental] = result.records
        for scratch, warm in zip(records[False], records[True]):
            assert scratch.benchmark == warm.benchmark
            assert scratch.outcome == warm.outcome
            assert scratch.dsps == warm.dsps
            assert scratch.luts == warm.luts
            assert warm.incremental and not scratch.incremental

    def test_parallel_sweep_records_equal_across_verify_modes(
            self, fast_benchmarks):
        from repro.engine.parallel import SessionSpec, run_sweep
        from repro.harness.runner import ExperimentConfig

        benchmarks = fast_benchmarks(4)
        records = {}
        for incremental_verify in (False, True):
            config = ExperimentConfig(incremental_verify=incremental_verify)
            spec = SessionSpec(incremental_verify=incremental_verify,
                               enable_cache=False)
            result = run_sweep(benchmarks, config, workers=2, session_spec=spec)
            records[incremental_verify] = result.records
        for portfolio, warm in zip(records[False], records[True]):
            assert portfolio.benchmark == warm.benchmark
            assert portfolio.outcome == warm.outcome
            assert portfolio.dsps == warm.dsps
            assert portfolio.luts == warm.luts
            assert warm.incremental_verify and not portfolio.incremental_verify


class TestIncrementalVerify:
    def _interval_instance(self, width=10):
        x, k, m = bvvar("x", width), bvvar("k", width), bvvar("m", width)
        obligation = Obligation(
            bvand(bvult(x, bv(700, width)), bvult(bv(300, width), x)),
            bvand(bvult(x, k), bvult(m, x)))
        return [obligation], {"k": width, "m": width}

    def test_verify_session_checks_candidates_by_assumption(self):
        from repro.smt.equivalence import IncrementalVerifySession

        width = 8
        x, k = bvvar("x", width), bvvar("k", width)
        obligations = [Obligation(bvult(x, bv(100, width)), bvult(x, k))]
        session = IncrementalVerifySession(obligations, {"k": width},
                                           {"x": width})
        correct = session.check_obligation(0, {"k": 100})
        assert correct.is_unsat  # no counterexample: the candidate is right
        wrong = session.check_obligation(0, {"k": 90})
        assert wrong.is_sat
        # Canonical counterexample: the smallest x with x < 100 but not x < 90.
        assert wrong.model["x"] == 90
        # The context was built once; checking added no clauses.
        assert session.checks == 2

    def test_verify_session_counterexamples_are_canonical(self):
        from repro.smt.equivalence import IncrementalVerifySession

        width = 8
        x, k = bvvar("x", width), bvvar("k", width)
        obligations = [Obligation(bvult(x, bv(100, width)), bvult(x, k))]
        session = IncrementalVerifySession(obligations, {"k": width},
                                           {"x": width})
        for candidate, expected in ((120, 100), (90, 90), (0, 0)):
            result = session.check_obligation(0, {"k": candidate})
            assert result.is_sat
            assert result.model["x"] == expected
        session.restart()
        assert session.check_obligation(0, {"k": 120}).model["x"] == 100
        assert session.restarts == 1

    def test_failure_core_prefix_blocks_the_candidate(self):
        from repro.smt.equivalence import IncrementalVerifySession

        width = 8
        x, k = bvvar("x", width), bvvar("k", width)
        obligations = [Obligation(bvult(x, bv(100, width)), bvult(x, k))]
        session = IncrementalVerifySession(obligations, {"k": width},
                                           {"x": width})
        wrong = session.check_obligation(0, {"k": 90})
        counterexample = {"x": wrong.model["x"]}
        prefix = session.failure_core(0, {"k": 90}, counterexample)
        assert prefix, "a failing candidate must yield a non-trivial core"
        # Every (hole, bit, value) entry matches the refuted candidate.
        for name, bit, value in prefix:
            assert name == "k"
            assert (90 >> bit) & 1 == value

    def test_verify_stats_reported(self):
        obligations, holes = self._interval_instance()
        warm = synthesize(obligations, holes, incremental_verify=True,
                          solver=SmtSolver(seed=0), random_probes=0,
                          initial_random_examples=0)
        assert warm.succeeded and warm.iterations >= 4
        assert warm.incremental_verify
        assert warm.verify_time_seconds > 0
        assert warm.cores_pruned >= 1  # failures produced pruning cores
        scratch = synthesize(obligations, holes, incremental_verify=False,
                             solver=SmtSolver(seed=0), random_probes=0,
                             initial_random_examples=0)
        assert not scratch.incremental_verify
        assert scratch.cores_pruned == 0
        assert scratch.verify_clauses_retained == 0

    def test_mapping_session_incremental_verify_knob(self, mul8_verilog):
        results = {}
        for incremental_verify in (False, True):
            with MappingSession(enable_cache=False,
                                incremental_verify=incremental_verify) as session:
                results[incremental_verify] = session.map_verilog(
                    mul8_verilog, template="dsp", arch="intel-cyclone10lp",
                    timeout_seconds=60)
        assert results[False].status == results[True].status == "success"
        assert results[False].hole_values == results[True].hole_values
        assert results[True].synthesis.incremental_verify
        assert not results[False].synthesis.incremental_verify

    def test_budget_flows_into_incremental_verify(self):
        obligations, holes = self._interval_instance()
        budget = Budget(timeout_seconds=0.0).start()
        result = synthesize(obligations, holes, budget=budget,
                            incremental_verify=True, random_probes=0,
                            initial_random_examples=0)
        assert result.status == "unknown"

    def test_const_true_miter_reports_zero_counterexample(self):
        from repro.smt.equivalence import check_equivalence

        # bveq(a, a) folds to constant 1, so the miter against constant 0
        # normalises to constant true: different on *every* assignment.
        # The result must still carry a usable (all-zeros) counterexample —
        # a None here used to crash the CEGIS loop's counterexample
        # extraction.
        a = bvvar("a", 4)
        result = check_equivalence(bveq(a, a), bv(0, 1))
        assert result.is_different
        assert result.strategy == "normalise"
        assert result.counterexample is not None
        assert result.counterexample.get("a", 0) == 0


class TestCoreSoundness:
    """Every core the incremental layers emit must be genuinely unsat when
    re-solved from scratch — a wrong core silently breaks pruning
    completeness (the blocking constraint would cut off live candidates)."""

    @staticmethod
    def _assert_core_unsat_from_scratch(cnf, core, context_label):
        from repro.sat.dpll import DPLLSolver

        fresh = CNF(num_vars=cnf.num_vars,
                    clauses=[list(c) for c in cnf.clauses]
                            + [[lit] for lit in core])
        assert CDCLSolver(fresh).solve().is_unsat, context_label
        # DPLL is an independent engine: a CDCL bug cannot vouch for itself.
        assert DPLLSolver(fresh).solve().is_unsat, context_label

    def test_verification_cores_are_genuinely_unsat(self, monkeypatch):
        import repro.smt.cegis as cegis_mod
        from repro.smt.equivalence import IncrementalVerifySession

        audits = []

        class AuditedSession(IncrementalVerifySession):
            def check_obligation(self, index, hole_values, deadline=None):
                result = IncrementalVerifySession.check_obligation(
                    self, index, hole_values, deadline)
                if result.is_unsat and self._solver.last_core is not None:
                    audits.append((self.context.cnf,
                                   list(self._solver.last_core)))
                return result

            def failure_core(self, index, hole_values, counterexample,
                             deadline=None):
                prefix = IncrementalVerifySession.failure_core(
                    self, index, hole_values, counterexample, deadline)
                if prefix is not None and self._solver.last_core is not None:
                    audits.append((self.context.cnf,
                                   list(self._solver.last_core)))
                return prefix

        monkeypatch.setattr(cegis_mod, "IncrementalVerifySession",
                            AuditedSession)
        width = 10
        x, k, m = bvvar("x", width), bvvar("k", width), bvvar("m", width)
        obligation = Obligation(
            bvand(bvult(x, bv(700, width)), bvult(bv(300, width), x)),
            bvand(bvult(x, k), bvult(m, x)))
        result = synthesize([obligation], {"k": width, "m": width},
                            incremental_verify=True,
                            solver=SmtSolver(seed=0, random_probes=0),
                            random_probes=0, initial_random_examples=0)
        assert result.succeeded
        # Both the final equivalence proof and every failure core audit.
        assert len(audits) >= result.cores_pruned >= 1
        for cnf, core in audits:
            self._assert_core_unsat_from_scratch(cnf, core, "verification core")

    def test_candidate_session_cores_are_genuinely_unsat(self):
        rng = random.Random(41)
        audited = 0
        for _ in range(12):
            width = rng.randint(3, 6)
            hole = bvvar("h", width)
            session = IncrementalSmtSession()
            session.assert_constraints([
                bvult(hole, bv(rng.randint(2, (1 << width) - 1), width)),
                bvne(hole, bv(rng.randrange(1 << width), width)),
            ])
            check = session.check()
            solver = session._solver
            assert solver is not None
            bit_vars = list(session.context.input_vars().values())
            for _ in range(8):
                assumptions = [var if rng.random() < 0.5 else -var
                               for var in rng.sample(bit_vars,
                                                     rng.randint(1, len(bit_vars)))]
                outcome = solver.solve(assumptions)
                if not outcome.is_unsat:
                    continue
                core = solver.last_core
                assert core is not None
                assert set(core) <= set(assumptions)
                self._assert_core_unsat_from_scratch(
                    session.context.cnf, core, "candidate-session core")
                audited += 1
        assert audited > 0  # the sample must actually exercise the path
