"""Unit and property-based tests for the bitvector expression substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bv import (
    bv, bvvar, bvadd, bvsub, bvmul, bvneg, bvnot, bvand, bvor, bvxor, bvxnor,
    bvshl, bvlshr, bvashr, bvconcat, bvextract, bvite, bveq, bvne, bvult,
    bvule, bvugt, bvuge, bvslt, bvsle, bvsgt, bvsge, bvredand, bvredor,
    zero_extend, sign_extend, evaluate, free_vars, simplify, substitute,
)
from repro.bv.ast import BVExpr
from repro.bv.ops import apply_op, mask, to_signed


class TestConstants:
    def test_constant_masking(self):
        assert bv(0x1ff, 8).value == 0xff

    def test_negative_constant_wraps(self):
        assert bv(-1, 8).value == 0xff

    def test_interning_makes_equal_constants_identical(self):
        assert bv(5, 8) is bv(5, 8)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            bv(0, 0)

    def test_variable_requires_name(self):
        with pytest.raises(ValueError):
            bvvar("", 4)


class TestLocalSimplification:
    def test_add_constant_folding(self):
        assert bvadd(bv(3, 8), bv(4, 8)) is bv(7, 8)

    def test_add_identity(self):
        a = bvvar("a", 8)
        assert bvadd(a, bv(0, 8)) is a

    def test_add_commutes_to_same_node(self):
        a, b = bvvar("a", 8), bvvar("b", 8)
        assert bvadd(a, b) is bvadd(b, a)

    def test_mul_by_zero(self):
        a = bvvar("a", 8)
        assert bvmul(a, bv(0, 8)).is_zero()

    def test_mul_by_one(self):
        a = bvvar("a", 8)
        assert bvmul(a, bv(1, 8)) is a

    def test_sub_self_is_zero(self):
        a = bvvar("a", 8)
        assert bvsub(a, a).is_zero()

    def test_and_with_zero(self):
        a = bvvar("a", 8)
        assert bvand(a, bv(0, 8)).is_zero()

    def test_and_with_ones(self):
        a = bvvar("a", 8)
        assert bvand(a, bv(0xff, 8)) is a

    def test_or_with_ones_saturates(self):
        a = bvvar("a", 8)
        assert bvor(a, bv(0xff, 8)).is_ones()

    def test_xor_self_is_zero(self):
        a = bvvar("a", 8)
        assert bvxor(a, a).is_zero()

    def test_double_negation(self):
        a = bvvar("a", 8)
        assert bvnot(bvnot(a)) is a

    def test_ite_constant_condition(self):
        a, b = bvvar("a", 8), bvvar("b", 8)
        assert bvite(bv(1, 1), a, b) is a
        assert bvite(bv(0, 1), a, b) is b

    def test_ite_same_branches(self):
        a = bvvar("a", 8)
        assert bvite(bvvar("c", 1), a, a) is a

    def test_eq_reflexive(self):
        a = bvvar("a", 8)
        assert bveq(a, a).is_true()

    def test_ne_reflexive(self):
        a = bvvar("a", 8)
        assert bvne(a, a).is_false()

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bvadd(bvvar("a", 8), bvvar("b", 4))

    def test_ite_requires_one_bit_condition(self):
        with pytest.raises(ValueError):
            bvite(bvvar("c", 2), bvvar("a", 8), bvvar("b", 8))


class TestStructureOps:
    def test_concat_width(self):
        assert bvconcat(bvvar("a", 3), bvvar("b", 5)).width == 8

    def test_concat_constant_merge(self):
        assert bvconcat(bv(0b101, 3), bv(0b01, 2)) is bv(0b10101, 5)

    def test_extract_full_width_is_identity(self):
        a = bvvar("a", 8)
        assert bvextract(7, 0, a) is a

    def test_extract_of_constant(self):
        assert bvextract(3, 1, bv(0b1010, 4)) is bv(0b101, 3)

    def test_extract_of_extract_composes(self):
        a = bvvar("a", 16)
        assert bvextract(1, 0, bvextract(11, 4, a)) is bvextract(5, 4, a)

    def test_extract_of_concat_selects_part(self):
        a, b = bvvar("a", 8), bvvar("b", 8)
        assert bvextract(7, 0, bvconcat(a, b)) is b
        assert bvextract(15, 8, bvconcat(a, b)) is a

    def test_extract_bad_range_rejected(self):
        with pytest.raises(ValueError):
            bvextract(8, 0, bvvar("a", 8))

    def test_zero_extend(self):
        a = bvvar("a", 4)
        extended = zero_extend(a, 4)
        assert extended.width == 8
        assert evaluate(extended, {"a": 0xf}) == 0x0f

    def test_sign_extend_negative(self):
        a = bvvar("a", 4)
        extended = sign_extend(a, 4)
        assert evaluate(extended, {"a": 0x8}) == 0xf8

    def test_zero_extend_zero_bits_is_identity(self):
        a = bvvar("a", 4)
        assert zero_extend(a, 0) is a

    def test_extract_pushes_through_bitwise(self):
        a, b = bvvar("a", 8), bvvar("b", 8)
        pushed = bvextract(3, 0, bvand(zero_extend(a, 8), zero_extend(b, 8)))
        assert pushed is bvand(bvextract(3, 0, a), bvextract(3, 0, b))

    def test_low_extract_pushes_through_add(self):
        a, b = bvvar("a", 8), bvvar("b", 8)
        wide = bvadd(zero_extend(a, 8), zero_extend(b, 8))
        assert bvextract(7, 0, wide) is bvadd(a, b)


class TestMuxDistribution:
    def test_mul_distributes_over_constant_mux_tree(self):
        s = bvvar("s", 1)
        tree = bvite(s, bv(3, 8), bv(5, 8))
        product = bvmul(tree, bv(7, 8))
        # The product folds to a mux over constants: no mul node remains.
        assert all(node.op != "mul" for node in product.iter_dag())
        assert evaluate(product, {"s": 1}) == 21
        assert evaluate(product, {"s": 0}) == 35

    def test_mul_of_symbolic_operands_not_distributed(self):
        a, b, s = bvvar("a", 8), bvvar("b", 8), bvvar("s", 1)
        product = bvmul(bvite(s, a, b), b)
        assert product.op == "mul"


class TestEvaluation:
    def test_free_vars(self):
        expr = bvadd(bvvar("x", 4), bvmul(bvvar("y", 4), bvvar("x", 4)))
        assert free_vars(expr) == frozenset({"x", "y"})

    def test_missing_binding_raises(self):
        with pytest.raises(KeyError):
            evaluate(bvvar("q", 4), {})

    def test_substitute_folds(self):
        a, b = bvvar("a", 8), bvvar("b", 8)
        expr = bvand(bvmul(bvadd(a, b), bv(2, 8)), bv(0xf, 8))
        result = substitute(expr, {"a": bv(3, 8), "b": bv(5, 8)})
        assert result is bv(((3 + 5) * 2) & 0xf, 8)

    def test_simplify_is_idempotent(self):
        a = bvvar("a", 8)
        expr = bvadd(a, bvsub(a, a))
        assert simplify(expr) is simplify(simplify(expr))


_WIDTHS = st.integers(min_value=1, max_value=12)


@st.composite
def _two_values(draw):
    width = draw(_WIDTHS)
    x = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    y = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    return width, x, y


class TestOperatorSemanticsProperties:
    """Property-based checks: builder + evaluator agree with Python integers."""

    @given(_two_values())
    @settings(max_examples=80, deadline=None)
    def test_add_matches_modular_arithmetic(self, data):
        width, x, y = data
        expr = bvadd(bvvar("x", width), bvvar("y", width))
        assert evaluate(expr, {"x": x, "y": y}) == (x + y) & mask(width)

    @given(_two_values())
    @settings(max_examples=80, deadline=None)
    def test_sub_matches_modular_arithmetic(self, data):
        width, x, y = data
        expr = bvsub(bvvar("x", width), bvvar("y", width))
        assert evaluate(expr, {"x": x, "y": y}) == (x - y) & mask(width)

    @given(_two_values())
    @settings(max_examples=80, deadline=None)
    def test_mul_matches_modular_arithmetic(self, data):
        width, x, y = data
        expr = bvmul(bvvar("x", width), bvvar("y", width))
        assert evaluate(expr, {"x": x, "y": y}) == (x * y) & mask(width)

    @given(_two_values())
    @settings(max_examples=80, deadline=None)
    def test_unsigned_comparison(self, data):
        width, x, y = data
        expr = bvult(bvvar("x", width), bvvar("y", width))
        assert evaluate(expr, {"x": x, "y": y}) == int(x < y)

    @given(_two_values())
    @settings(max_examples=80, deadline=None)
    def test_signed_comparison(self, data):
        width, x, y = data
        expr = bvslt(bvvar("x", width), bvvar("y", width))
        expected = int(to_signed(x, width) < to_signed(y, width))
        assert evaluate(expr, {"x": x, "y": y}) == expected

    @given(_two_values())
    @settings(max_examples=80, deadline=None)
    def test_xnor_is_not_xor(self, data):
        width, x, y = data
        env = {"x": x, "y": y}
        xnor = bvxnor(bvvar("x", width), bvvar("y", width))
        xor = bvxor(bvvar("x", width), bvvar("y", width))
        assert evaluate(xnor, env) == (~evaluate(xor, env)) & mask(width)

    @given(_two_values())
    @settings(max_examples=60, deadline=None)
    def test_concat_extract_roundtrip(self, data):
        width, x, y = data
        x_var, y_var = bvvar("x", width), bvvar("y", width)
        combined = bvconcat(x_var, y_var)
        env = {"x": x, "y": y}
        assert evaluate(bvextract(width - 1, 0, combined), env) == y
        assert evaluate(bvextract(2 * width - 1, width, combined), env) == x

    @given(_two_values(), st.integers(min_value=0, max_value=15))
    @settings(max_examples=60, deadline=None)
    def test_shift_semantics(self, data, shift):
        width, x, _ = data
        env = {"x": x}
        # The shift amount is itself a width-bit constant, so it wraps.
        effective_shift = shift & mask(width)
        shifted = evaluate(bvshl(bvvar("x", width), bv(shift, width)), env)
        expected = (x << effective_shift) & mask(width) if effective_shift < width else 0
        assert shifted == expected
