"""Tests for the distributed sweep: the TCP coordinator/worker protocol,
work-stealing leases, exactly-once merge, artifact resume, and the
failure matrix (worker death, slow-worker races, bad tokens)."""

import json
import multiprocessing
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.engine.distributed import (
    PROTOCOL_VERSION,
    CoordinatorUnreachable,
    SweepCoordinator,
    WorkerRejected,
    parse_address,
    run_distributed_sweep,
    run_worker,
)
from repro.engine.parallel import SessionSpec, run_sweep
from repro.harness.runner import ExperimentConfig, MappingRecord
from repro.workloads.generator import Microbenchmark, WorkloadSpec

from _fixtures import small_workloads as _fast_benchmarks

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="requires the fork start method")


def _comparable(record: MappingRecord) -> dict:
    """Record content minus the wall-clock-dependent fields."""
    data = record.to_dict()
    data.pop("time_seconds")
    data.pop("solver_solve_seconds")
    data.pop("cache_hit")
    return data


def _serial_records(benchmarks, config):
    return run_sweep(benchmarks, config, workers=1).records


class _WireClient:
    """A raw newline-JSON protocol client (simulates one worker's socket)."""

    def __init__(self, host: str, port: int) -> None:
        self.sock = socket.create_connection((host, port), timeout=30)
        self.reader = self.sock.makefile("rb")
        self._id = 0

    def request(self, message: dict) -> dict:
        self._id += 1
        payload = dict(message, id=self._id)
        self.sock.sendall((json.dumps(payload) + "\n").encode())
        line = self.reader.readline()
        assert line, "coordinator closed the connection"
        return json.loads(line)

    def hello(self, token: str, worker: str = "wire") -> dict:
        return self.request({"op": "hello", "token": token, "worker": worker,
                             "protocol": PROTOCOL_VERSION})

    def close(self) -> None:
        # An abrupt close: from the coordinator's side this is exactly
        # what a SIGKILLed worker looks like (the kernel closes the
        # socket; no protocol goodbye).
        try:
            self.reader.close()
            self.sock.close()
        except OSError:
            pass


# --------------------------------------------------------------------------- #
# Wire forms
# --------------------------------------------------------------------------- #
class TestWireForms:
    def test_parse_address(self):
        assert parse_address("example.org:4000") == ("example.org", 4000)
        assert parse_address(":4000") == ("127.0.0.1", 4000)
        for bad in ("example.org", "host:", "host:port", "4000"):
            with pytest.raises(ValueError):
                parse_address(bad)

    def test_microbenchmark_round_trips_through_json(self):
        for benchmark in _fast_benchmarks(3):
            wire = json.loads(json.dumps(benchmark.to_dict()))
            rebuilt = Microbenchmark.from_dict(wire)
            assert rebuilt.name == benchmark.name
            assert rebuilt.verilog == benchmark.verilog  # byte-identical

    def test_workload_spec_round_trips(self):
        spec = WorkloadSpec(name="mul_add", expression="(a * b) + c",
                            inputs=("a", "b", "c"), post_op="add")
        assert WorkloadSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))) == spec

    def test_session_spec_round_trips(self):
        spec = SessionSpec(portfolio="sequential", enable_cache=False,
                           incremental=True, incremental_verify=True,
                           random_probes=7)
        rebuilt = SessionSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec

    def test_experiment_config_round_trips(self):
        config = ExperimentConfig(template="dsp", random_probes=5,
                                  incremental=True,
                                  timeout_seconds={"intel-cyclone10lp": 9.0})
        rebuilt = ExperimentConfig.from_dict(
            json.loads(json.dumps(config.to_dict())))
        assert rebuilt == config
        assert rebuilt.timeout_seconds["intel-cyclone10lp"] == 9.0


# --------------------------------------------------------------------------- #
# Protocol-level failure matrix (manual clients: deterministic, no solving)
# --------------------------------------------------------------------------- #
class TestCoordinatorProtocol:
    def _coordinator(self, benchmarks, config, **kwargs):
        kwargs.setdefault("shard_size", 2)
        return SweepCoordinator(benchmarks, config,
                                SessionSpec.from_config(config), **kwargs)

    def test_bad_token_is_rejected_and_connection_closed(self):
        benchmarks = _fast_benchmarks(2)
        with self._coordinator(benchmarks, ExperimentConfig()) as coordinator:
            client = _WireClient(coordinator.host, coordinator.port)
            reply = client.request({"op": "hello", "token": "wrong",
                                    "protocol": PROTOCOL_VERSION})
            assert reply["ok"] is False
            assert "token" in reply["error"]
            assert client.reader.readline() == b""  # closed after the reply
            client.close()

    def test_protocol_mismatch_is_rejected(self):
        benchmarks = _fast_benchmarks(2)
        with self._coordinator(benchmarks, ExperimentConfig()) as coordinator:
            client = _WireClient(coordinator.host, coordinator.port)
            reply = client.request({"op": "hello", "token": coordinator.token,
                                    "protocol": PROTOCOL_VERSION + 1})
            assert reply["ok"] is False
            assert "protocol" in reply["error"]
            client.close()

    def test_ops_require_handshake(self):
        benchmarks = _fast_benchmarks(2)
        with self._coordinator(benchmarks, ExperimentConfig()) as coordinator:
            client = _WireClient(coordinator.host, coordinator.port)
            reply = client.request({"op": "next"})
            assert reply["ok"] is False
            assert "hello" in reply["error"]
            client.close()

    def test_worker_death_mid_shard_reassigns_and_merges_once(self):
        benchmarks = _fast_benchmarks(2)
        config = ExperimentConfig()
        serial = _serial_records(benchmarks, config)
        with self._coordinator(benchmarks, config,
                               lease_timeout=60.0) as coordinator:
            victim = _WireClient(coordinator.host, coordinator.port)
            assert victim.hello(coordinator.token, "victim")["ok"]
            shard = victim.request({"op": "next"})["shard"]
            assert shard["id"] == 0
            victim.close()  # dies mid-shard, holding the lease

            survivor = _WireClient(coordinator.host, coordinator.port)
            assert survivor.hello(coordinator.token, "survivor")["ok"]
            # The dead worker's shard comes straight back out of the queue.
            reassigned = None
            for _ in range(100):
                reassigned = survivor.request({"op": "next"})["shard"]
                if reassigned is not None:
                    break
                time.sleep(0.02)
            assert reassigned is not None and reassigned["id"] == 0
            reply = survivor.request({
                "op": "result", "shard": 0,
                "records": [[index, serial[index].to_dict()]
                            for index, _ in enumerate(benchmarks)]})
            assert reply["accepted"] is True
            survivor.close()
            result = coordinator.wait(timeout=10)
        assert [_comparable(r) for r in result.records] == \
            [_comparable(r) for r in serial]
        assert result.telemetry["shards_retried"] >= 1

    def test_slow_worker_racing_reassignment_merges_exactly_once(self):
        benchmarks = _fast_benchmarks(2)
        config = ExperimentConfig()
        serial = _serial_records(benchmarks, config)
        records = [[index, serial[index].to_dict()]
                   for index, _ in enumerate(benchmarks)]
        with self._coordinator(benchmarks, config,
                               lease_timeout=0.2) as coordinator:
            slow = _WireClient(coordinator.host, coordinator.port)
            assert slow.hello(coordinator.token, "slow")["ok"]
            assert slow.request({"op": "next"})["shard"]["id"] == 0
            time.sleep(0.6)  # no heartbeat: the lease expires

            thief = _WireClient(coordinator.host, coordinator.port)
            assert thief.hello(coordinator.token, "thief")["ok"]
            stolen = thief.request({"op": "next"})["shard"]
            assert stolen is not None and stolen["id"] == 0

            # The slow worker is told its lease is gone ...
            beat = slow.request({"op": "heartbeat", "shard": 0})
            assert beat["abandon"] is True
            # ... but it already finished: the first complete result wins.
            first = slow.request({"op": "result", "shard": 0,
                                  "records": records})
            assert first["accepted"] is True
            # The thief's copy is acknowledged and discarded.
            second = thief.request({"op": "result", "shard": 0,
                                    "records": records})
            assert second["accepted"] is False
            assert second["duplicate"] is True
            # The result's telemetry snapshot predates the duplicate (the
            # sweep completed on the first result); read the live counters.
            live = coordinator.telemetry()
            slow.close()
            thief.close()
            result = coordinator.wait(timeout=10)
        assert [_comparable(r) for r in result.records] == \
            [_comparable(r) for r in serial]
        assert live["shards_stolen"] >= 1
        assert live["duplicate_results"] == 1

    def test_incomplete_result_is_requeued_not_merged(self):
        benchmarks = _fast_benchmarks(2)
        config = ExperimentConfig()
        serial = _serial_records(benchmarks, config)
        with self._coordinator(benchmarks, config) as coordinator:
            client = _WireClient(coordinator.host, coordinator.port)
            assert client.hello(coordinator.token)["ok"]
            assert client.request({"op": "next"})["shard"]["id"] == 0
            partial = client.request({
                "op": "result", "shard": 0,
                "records": [[0, serial[0].to_dict()]]})  # missing index 1
            assert partial["accepted"] is False
            # The shard comes back; a complete result is then accepted.
            assert client.request({"op": "next"})["shard"]["id"] == 0
            complete = client.request({
                "op": "result", "shard": 0,
                "records": [[index, serial[index].to_dict()]
                            for index, _ in enumerate(benchmarks)]})
            assert complete["accepted"] is True
            client.close()
            result = coordinator.wait(timeout=10)
        assert len(result.records) == len(benchmarks)

    def test_retry_budget_exhaustion_fails_loudly(self):
        benchmarks = _fast_benchmarks(2)
        with self._coordinator(benchmarks, ExperimentConfig(),
                               retry_budget=0) as coordinator:
            client = _WireClient(coordinator.host, coordinator.port)
            assert client.hello(coordinator.token)["ok"]
            assert client.request({"op": "next"})["shard"] is not None
            client.close()  # the requeue exceeds the zero budget
            with pytest.raises(RuntimeError, match="retry budget"):
                coordinator.wait(timeout=10)
            # Surviving workers see the failure, not a hang.
            other = _WireClient(coordinator.host, coordinator.port)
            assert other.hello(coordinator.token)["ok"]
            refused = other.request({"op": "next"})
            assert refused["ok"] is False
            assert "retry budget" in refused["error"]
            other.close()

    def test_cache_entries_are_pooled_for_late_joiners(self):
        benchmarks = _fast_benchmarks(2)
        config = ExperimentConfig()
        serial = _serial_records(benchmarks, config)
        with self._coordinator(benchmarks, config) as coordinator:
            early = _WireClient(coordinator.host, coordinator.port)
            hello = early.hello(coordinator.token, "early")
            assert hello["cache_entries"] == []
            assert early.request({"op": "next"})["shard"]["id"] == 0
            reply = early.request({
                "op": "result", "shard": 0,
                "records": [[index, serial[index].to_dict()]
                            for index, _ in enumerate(benchmarks)],
                "cache_entries": [["cache-key-1", "YmxvYg=="]]})
            assert reply["accepted"] is True

            late = _WireClient(coordinator.host, coordinator.port)
            joined = late.hello(coordinator.token, "late")
            assert ["cache-key-1", "YmxvYg=="] in joined["cache_entries"]
            early.close()
            late.close()
            result = coordinator.wait(timeout=10)
        assert result.telemetry["cache_entries_synced"] == 1


# --------------------------------------------------------------------------- #
# Artifact resume
# --------------------------------------------------------------------------- #
class TestArtifactResume:
    def _complete_first_shard(self, coordinator, serial):
        client = _WireClient(coordinator.host, coordinator.port)
        assert client.hello(coordinator.token)["ok"]
        shard = client.request({"op": "next"})["shard"]
        reply = client.request({
            "op": "result", "shard": shard["id"],
            "records": [[index, serial[index].to_dict()]
                        for index, _ in shard["items"]]})
        assert reply["accepted"] is True
        client.close()
        return shard["id"]

    def test_restart_resumes_completed_shards_without_recompute(
            self, tmp_path):
        benchmarks = _fast_benchmarks(4)
        config = ExperimentConfig()
        serial = _serial_records(benchmarks, config)
        spec = SessionSpec.from_config(config)

        first = SweepCoordinator(benchmarks, config, spec, shard_size=2,
                                 artifact_dir=tmp_path)
        first.start()
        done_id = self._complete_first_shard(first, serial)
        first.close(linger=0.0)
        assert (tmp_path / f"shard-{done_id:05d}.jsonl").exists()

        second = SweepCoordinator(benchmarks, config, spec, shard_size=2,
                                  artifact_dir=tmp_path)
        with second:
            assert second.telemetry()["shards_resumed"] == 1
            assert second.telemetry()["shards_completed"] == 1
            client = _WireClient(second.host, second.port)
            assert client.hello(second.token)["ok"]
            # Only the other shard is handed out.
            shard = client.request({"op": "next"})["shard"]
            assert shard["id"] != done_id
            reply = client.request({
                "op": "result", "shard": shard["id"],
                "records": [[index, serial[index].to_dict()]
                            for index, _ in shard["items"]]})
            assert reply["accepted"] is True
            client.close()
            result = second.wait(timeout=10)
        assert [_comparable(r) for r in result.records] == \
            [_comparable(r) for r in serial]

    def test_partial_shard_artifact_is_recomputed(self, tmp_path):
        benchmarks = _fast_benchmarks(4)
        config = ExperimentConfig()
        serial = _serial_records(benchmarks, config)
        spec = SessionSpec.from_config(config)

        first = SweepCoordinator(benchmarks, config, spec, shard_size=2,
                                 artifact_dir=tmp_path)
        first.start()
        done_id = self._complete_first_shard(first, serial)
        first.close(linger=0.0)

        # Truncate the artifact to one record: a torn write / partial disk.
        path = tmp_path / f"shard-{done_id:05d}.jsonl"
        path.write_text(path.read_text().splitlines()[0] + "\n")

        second = SweepCoordinator(benchmarks, config, spec, shard_size=2,
                                  artifact_dir=tmp_path)
        with second:
            assert second.telemetry()["shards_resumed"] == 0

    def test_mismatched_manifest_discards_stale_artifacts(self, tmp_path):
        config = ExperimentConfig()
        benchmarks = _fast_benchmarks(4)
        serial = _serial_records(benchmarks, config)
        spec = SessionSpec.from_config(config)

        first = SweepCoordinator(benchmarks, config, spec, shard_size=2,
                                 artifact_dir=tmp_path)
        first.start()
        self._complete_first_shard(first, serial)
        first.close(linger=0.0)
        assert list(tmp_path.glob("shard-*.jsonl"))

        # A different grid in the same directory: nothing may be resumed.
        other = SweepCoordinator(_fast_benchmarks(2), config, spec,
                                 shard_size=2, artifact_dir=tmp_path)
        other.start()
        try:
            assert other.telemetry()["shards_resumed"] == 0
            assert not list(tmp_path.glob("shard-*.jsonl"))
        finally:
            other.close(linger=0.0)


# --------------------------------------------------------------------------- #
# End to end: real worker processes over loopback TCP
# --------------------------------------------------------------------------- #
@needs_fork
class TestEndToEnd:
    @pytest.mark.parametrize("incremental,incremental_verify",
                             [(False, False), (True, False),
                              (False, True), (True, True)])
    def test_distributed_equals_serial(self, incremental, incremental_verify):
        benchmarks = _fast_benchmarks(4)
        config = ExperimentConfig(incremental=incremental,
                                  incremental_verify=incremental_verify)
        serial = _serial_records(benchmarks, config)
        result = run_distributed_sweep(benchmarks, config, workers=2,
                                       shard_size=1, timeout=120)
        assert [_comparable(r) for r in result.records] == \
            [_comparable(r) for r in serial]
        assert result.telemetry["shards_completed"] == len(benchmarks)

    def test_sigkilled_worker_is_reassigned(self):
        from repro.engine.distributed import _local_worker_main

        benchmarks = _fast_benchmarks(8)
        config = ExperimentConfig()
        serial = _serial_records(benchmarks, config)
        coordinator = SweepCoordinator(benchmarks, config,
                                       SessionSpec.from_config(config),
                                       shard_size=1, lease_timeout=10.0)
        coordinator.start()
        context = multiprocessing.get_context("fork")
        survivor = None
        try:
            victim = context.Process(
                target=_local_worker_main,
                args=((coordinator.host, coordinator.port),
                      coordinator.token, "victim"), daemon=True)
            victim.start()
            # Kill the worker the moment it holds a lease (mid-shard).
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if coordinator.telemetry()["active_leases"] >= 1:
                    break
                time.sleep(0.001)
            else:
                pytest.fail("worker never took a lease")
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            assert not victim.is_alive()

            survivor = context.Process(
                target=_local_worker_main,
                args=((coordinator.host, coordinator.port),
                      coordinator.token, "survivor"), daemon=True)
            survivor.start()
            result = coordinator.wait(timeout=120)
        finally:
            if survivor is not None:
                survivor.join(timeout=15)
                if survivor.is_alive():
                    survivor.terminate()
            coordinator.close()
        assert [_comparable(r) for r in result.records] == \
            [_comparable(r) for r in serial]
        # The killed worker's shard was requeued (on disconnect) and
        # merged exactly once.
        assert result.telemetry["shards_retried"] >= 1
        assert len(result.records) == len(benchmarks)

    def test_bad_token_raises_worker_rejected(self):
        benchmarks = _fast_benchmarks(2)
        config = ExperimentConfig()
        with SweepCoordinator(benchmarks, config,
                              SessionSpec.from_config(config)) as coordinator:
            with pytest.raises(WorkerRejected, match="token"):
                run_worker((coordinator.host, coordinator.port), "wrong")

    def test_unreachable_coordinator_raises_after_backoff(self):
        with pytest.raises(CoordinatorUnreachable):
            run_worker(("127.0.0.1", 1), "token", reconnect_attempts=1,
                       reconnect_backoff=0.01)


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestCli:
    def _env(self):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return env

    def test_worker_against_dead_coordinator_exits_4_with_diagnosis(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.cli", "sweep",
             "--worker", "127.0.0.1:1", "--token", "nope",
             "--reconnect-attempts", "0"],
            env=self._env(), capture_output=True, text=True, timeout=120)
        assert completed.returncode == 4
        assert "--coordinator" in completed.stderr

    def test_worker_requires_token(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.cli", "sweep",
             "--worker", "127.0.0.1:1"],
            env=self._env(), capture_output=True, text=True, timeout=120)
        assert completed.returncode == 2
        assert "--token" in completed.stderr

    def test_coordinator_and_worker_flags_conflict(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.cli", "sweep",
             "--coordinator", ":0", "--worker", "127.0.0.1:1",
             "--token", "x"],
            env=self._env(), capture_output=True, text=True, timeout=120)
        assert completed.returncode == 2
