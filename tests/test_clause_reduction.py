"""Tests for LBD-based clause-database reduction in the persistent solvers.

Learned clauses are entailed by the problem clauses, so deleting them can
change only the search trajectory — never a status, a canonical model, an
unsat core's validity, or the four-way CEGIS mode equality.  These tests
force reductions with aggressive knobs and hold the solver to that.
"""

import random

import pytest

from repro.bv import bv, bvvar, bvand, bvmul, bvne, bvult
from repro.engine.budget import Budget
from repro.sat.cnf import CNF
from repro.sat.dpll import DPLLSolver
from repro.sat.solver import CDCLSolver
from repro.smt.cegis import Obligation, synthesize
from repro.smt.equivalence import IncrementalVerifySession
from repro.smt.solver import IncrementalSmtSession, SmtSolver


def _pigeonhole(holes):
    """holes+1 pigeons into ``holes`` holes: unsat and conflict-heavy, the
    cheapest way to force a large learned database."""
    pigeons = holes + 1

    def var(pigeon, hole):
        return pigeon * holes + hole + 1

    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return CNF(num_vars=pigeons * holes, clauses=clauses)


def _random_3sat(rng, num_vars):
    """Near the sat/unsat phase transition (m ≈ 4.3·n): conflict-heavy
    enough that even tiny instances learn clauses and trigger reduction."""
    clauses = []
    for _ in range(int(4.3 * num_vars)):
        chosen = rng.sample(range(1, num_vars + 1), 3)
        clauses.append([v if rng.random() < 0.5 else -v for v in chosen])
    return clauses


def _random_clauses(rng, num_vars, num_clauses):
    clauses = []
    for _ in range(num_clauses):
        clause = []
        for _ in range(rng.randint(1, 3)):
            v = rng.randint(1, num_vars)
            clause.append(v if rng.random() < 0.5 else -v)
        clauses.append(clause)
    return clauses


class TestReductionMechanics:
    def test_reduction_fires_and_bounds_the_database(self):
        solver = CDCLSolver(_pigeonhole(5), reduce_interval=40, max_lbd_keep=2)
        assert solver.solve().is_unsat
        assert solver.reductions > 0
        assert solver.clauses_deleted > 0
        assert solver.learned_alive < solver.learned_count
        assert solver.db_size_floor <= solver.db_size_peak
        # The peak is bounded by what survives a reduce plus one interval's
        # worth of growth — the invariant the benchmark measures at scale.
        assert solver.db_size_peak <= solver.db_size_floor \
            + solver.clauses_deleted + solver.reduce_interval

    def test_reduce_interval_zero_disables_reduction(self):
        solver = CDCLSolver(_pigeonhole(5), reduce_interval=0)
        assert solver.solve().is_unsat
        assert solver.reductions == 0
        assert solver.clauses_deleted == 0
        assert solver.learned_alive == len(solver._learned)

    def test_glue_threshold_protects_everything_when_maximal(self):
        # With the glue tier covering every possible LBD, reduction passes
        # run but may delete nothing.
        solver = CDCLSolver(_pigeonhole(5), reduce_interval=40,
                            max_lbd_keep=10_000)
        assert solver.solve().is_unsat
        assert solver.reductions > 0
        assert solver.clauses_deleted == 0

    def test_deleted_clauses_leave_no_dangling_watches(self):
        solver = CDCLSolver(_pigeonhole(5), reduce_interval=25, max_lbd_keep=1)
        assert solver.solve().is_unsat
        assert solver.clauses_deleted > 0
        # Compaction must leave no tombstones in the arena and every watcher
        # pointing at a live clause that really watches that literal.
        live = {}
        for off, size, _lbd, flags in solver.iter_clause_refs():
            assert flags in (0, 1)  # no deleted-pending entries survive
            live[off] = size
        for lit, off, _blocker in solver.watcher_entries():
            assert off in live
            assert lit in solver.clause_literals(off)[:2]

    def test_reduction_cost_scales_linearly_with_database_size(self):
        """4x learned clauses must cost ~4x reduction time, not ~16x.

        Pins the compacting-GC replacement of the legacy per-victim
        ``list.remove`` detach.  With 10k six-literal clauses over 300
        variables the watch lists average ~100 entries, so a reintroduced
        per-delete watcher scan would scale with (victims x list length)
        — quadratically in database size — while the single-sweep
        compaction stays linear in arena words.
        """
        import time

        def build(learned):
            num_vars = 300
            rng = random.Random(7)
            solver = CDCLSolver(CNF(num_vars=num_vars, clauses=[]),
                                reduce_interval=0, max_lbd_keep=2)
            for _ in range(learned):
                clause = [v if rng.random() < 0.5 else -v
                          for v in rng.sample(range(1, num_vars + 1), 6)]
                solver._learn_clause(clause, rng.randint(3, 12))
            return solver

        def reduce_seconds(learned):
            best = float("inf")
            for _ in range(5):
                solver = build(learned)
                start = time.perf_counter()
                solver._reduce_db()
                best = min(best, time.perf_counter() - start)
                assert solver.clauses_deleted >= learned // 2
            return best

        small, large = reduce_seconds(2_500), reduce_seconds(10_000)
        # Linear scaling predicts 4x; 9x leaves headroom for timer noise
        # while still failing hard on quadratic (~16x) behaviour.
        assert large <= max(small, 1e-4) * 9.0, (small, large)

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            CDCLSolver(reduce_interval=-1)
        with pytest.raises(ValueError):
            CDCLSolver(max_lbd_keep=-1)


class TestReductionSoundness:
    def test_post_reduce_add_clause_and_assumptions_match_fresh(self):
        rng = random.Random(23)
        reduced_runs = 0
        for _ in range(40):
            num_vars = rng.randint(8, 12)
            clauses = _random_3sat(rng, num_vars)
            warm = CDCLSolver(CNF(num_vars=num_vars, clauses=clauses),
                              reduce_interval=2, max_lbd_keep=0)
            warm.solve()
            extra = _random_clauses(rng, num_vars, rng.randint(1, 4))
            for clause in extra:
                warm.add_clause(clause)
            fresh = CDCLSolver(CNF(num_vars=num_vars, clauses=clauses + extra))
            warm_result, fresh_result = warm.solve(), fresh.solve()
            assert warm_result.status == fresh_result.status
            if warm_result.is_sat:
                assignment = [None] + [warm_result.model[v]
                                       for v in range(1, num_vars + 1)]
                assert CNF(num_vars=num_vars,
                           clauses=clauses + extra).evaluate(assignment)
            assumptions = [rng.randint(1, num_vars)
                           * (1 if rng.random() < 0.5 else -1)
                           for _ in range(rng.randint(1, 3))]
            with_units = clauses + extra + [[lit] for lit in assumptions]
            expected = CDCLSolver(CNF(num_vars=num_vars,
                                      clauses=with_units)).solve().status
            assert warm.solve(assumptions).status == expected
            if warm.reductions:
                reduced_runs += 1
        assert reduced_runs > 0  # the sample must actually exercise reduction

    def test_cores_remain_valid_after_reduction(self):
        rng = random.Random(31)
        cores_seen = 0
        for _ in range(60):
            num_vars = rng.randint(6, 10)
            clauses = _random_3sat(rng, num_vars)
            solver = CDCLSolver(CNF(num_vars=num_vars, clauses=clauses),
                                reduce_interval=2, max_lbd_keep=0)
            solver.solve()  # warm up and likely reduce
            assumptions = []
            for v in rng.sample(range(1, num_vars + 1), min(3, num_vars)):
                assumptions.append(v if rng.random() < 0.5 else -v)
            result = solver.solve(assumptions=assumptions)
            if not result.is_unsat:
                continue
            core = solver.last_core
            assert core is not None
            assert set(core) <= set(assumptions)
            strengthened = CNF(num_vars=num_vars,
                               clauses=clauses + [[lit] for lit in core])
            assert CDCLSolver(strengthened).solve().is_unsat
            # DPLL is an independent engine: CDCL cannot vouch for itself.
            assert DPLLSolver(strengthened).solve().is_unsat
            cores_seen += 1
        assert cores_seen > 0

    def test_statuses_match_an_unreduced_solver_on_random_cnfs(self):
        rng = random.Random(47)
        for _ in range(60):
            num_vars = rng.randint(3, 10)
            clauses = _random_clauses(rng, num_vars, rng.randint(4, 40))
            cnf = CNF(num_vars=num_vars, clauses=clauses)
            reduced = CDCLSolver(cnf, reduce_interval=1, max_lbd_keep=0).solve()
            unreduced = CDCLSolver(cnf, reduce_interval=0).solve()
            assert reduced.status == unreduced.status


class TestSessionReduction:
    def test_smt_session_reduction_preserves_canonical_models(self):
        batches = [
            [bvult(bvvar("h", 6), bv(40, 6))],
            [bvult(bv(17, 6), bvvar("h", 6))],
            [bvne(bvvar("h", 6), bv(20, 6)), bvne(bvvar("h", 6), bv(18, 6))],
        ]
        aggressive = IncrementalSmtSession(reduce_interval=1, max_lbd_keep=0)
        plain = IncrementalSmtSession()
        for batch in batches:
            aggressive.assert_constraints(batch)
            plain.assert_constraints(batch)
            lhs, rhs = aggressive.check(), plain.check()
            assert lhs.status == rhs.status
            assert lhs.model.as_dict() == rhs.model.as_dict()
        stats = aggressive.stats()
        assert "clauses_deleted" in stats and "db_size_peak" in stats

    def test_verify_session_reduction_keeps_counterexamples_canonical(self):
        width = 8
        x, k = bvvar("x", width), bvvar("k", width)
        obligations = [Obligation(bvult(x, bv(100, width)), bvult(x, k))]
        aggressive = IncrementalVerifySession(obligations, {"k": width},
                                              {"x": width},
                                              reduce_interval=1, max_lbd_keep=0)
        plain = IncrementalVerifySession(obligations, {"k": width},
                                         {"x": width})
        for candidate in (120, 90, 0, 100):
            lhs = aggressive.check_obligation(0, {"k": candidate})
            rhs = plain.check_obligation(0, {"k": candidate})
            assert lhs.status == rhs.status
            if lhs.is_sat:
                assert lhs.model["x"] == rhs.model["x"]
        wrong = aggressive.check_obligation(0, {"k": 90})
        prefix = aggressive.failure_core(0, {"k": 90}, {"x": wrong.model["x"]})
        assert prefix
        for name, bit, value in prefix:
            assert name == "k" and (90 >> bit) & 1 == value

    def test_telemetry_survives_budget_restarts(self):
        session = IncrementalSmtSession(reduce_interval=1, max_lbd_keep=0)
        session.assert_constraints([bvult(bv(6, 5), bvvar("h", 5)),
                                    bvult(bvvar("h", 5), bv(30, 5))])
        session.check()
        deleted_before = session.clauses_deleted
        peak_before = session.db_size_peak
        session.restart()
        assert session.clauses_deleted == deleted_before
        assert session.db_size_peak == peak_before
        session.check()
        assert session.clauses_deleted >= deleted_before


class TestCegisModeEqualityUnderReduction:
    def _interval_instance(self, width=10):
        x, k, m = bvvar("x", width), bvvar("k", width), bvvar("m", width)
        obligation = Obligation(
            bvand(bvult(x, bv(700, width)), bvult(bv(300, width), x)),
            bvand(bvult(x, k), bvult(m, x)))
        return [obligation], {"k": width, "m": width}

    def test_mid_run_reduction_leaves_all_four_modes_identical(self):
        obligations, holes = self._interval_instance()
        baseline = synthesize(obligations, holes, solver=SmtSolver(seed=0),
                              random_probes=0, initial_random_examples=0)
        assert baseline.succeeded and baseline.iterations >= 4
        for incremental in (False, True):
            for incremental_verify in (False, True):
                result = synthesize(
                    obligations, holes, incremental=incremental,
                    incremental_verify=incremental_verify,
                    solver=SmtSolver(seed=0), random_probes=0,
                    initial_random_examples=0,
                    reduce_interval=2, max_lbd_keep=0)
                key = (incremental, incremental_verify)
                assert result.status == baseline.status, key
                assert result.hole_values == baseline.hole_values, key
                assert result.iterations == baseline.iterations, key
                assert result.examples_used == baseline.examples_used, key

    def test_reduction_telemetry_flows_into_the_result(self):
        obligations, holes = self._interval_instance()
        result = synthesize(obligations, holes, incremental=True,
                            incremental_verify=True, solver=SmtSolver(seed=0),
                            random_probes=0, initial_random_examples=0,
                            reduce_interval=2, max_lbd_keep=0)
        assert result.succeeded
        assert result.db_size_peak > 0
        assert result.clauses_deleted >= 0
        # At default (patient) knobs these instances never trigger a
        # reduction, so the deletion counter stays zero.
        patient = synthesize(obligations, holes, solver=SmtSolver(seed=0),
                             random_probes=0, initial_random_examples=0)
        assert patient.clauses_deleted == 0

    def test_throwaway_session_telemetry_is_counted(self):
        # From-scratch mode builds a throwaway candidate session per
        # iteration; its reduction work must be folded into the result.
        # Factoring a semiprime forces real conflicts in that session.
        width = 12
        h1, h2 = bvvar("h1", width), bvvar("h2", width)
        result = synthesize(
            [Obligation(bv(3599, width), bvmul(h1, h2))],
            {"h1": width, "h2": width},
            hole_constraints=[bvult(h1, bv(64, width)),
                              bvult(h2, bv(64, width)),
                              bvult(bv(1, width), h1),
                              bvult(bv(1, width), h2)],
            solver=SmtSolver(seed=0), random_probes=0,
            initial_random_examples=0, reduce_interval=2, max_lbd_keep=0)
        assert result.succeeded and not result.incremental
        assert result.hole_values in ({"h1": 59, "h2": 61},
                                      {"h1": 61, "h2": 59})
        assert result.db_size_peak > 0
        assert result.clauses_deleted > 0

    def test_budget_still_degrades_cleanly_with_reduction(self):
        obligations, holes = self._interval_instance()
        budget = Budget(timeout_seconds=0.0).start()
        result = synthesize(obligations, holes, budget=budget,
                            incremental=True, incremental_verify=True,
                            reduce_interval=2, max_lbd_keep=0,
                            random_probes=0, initial_random_examples=0)
        assert result.status == "unknown"
