"""Tests for the word-level solver, equivalence checking and CEGIS."""

import time

import pytest

from repro.bv import (
    bv, bvvar, bvadd, bvsub, bvmul, bvand, bvor, bvxor, bvite, bveq, bvne,
    bvult, bvextract, bvlshr, bvconcat, zero_extend, evaluate,
)
from repro.smt import check_equivalence, check_sat, synthesize
from repro.smt.cegis import Obligation
from repro.smt.solver import SmtSolver


class TestCheckSat:
    def test_constant_true(self):
        assert check_sat(bv(1, 1)).is_sat

    def test_constant_false(self):
        assert check_sat(bv(0, 1)).is_unsat

    def test_satisfiable_constraint_produces_model(self):
        a = bvvar("a", 8)
        result = check_sat(bveq(bvadd(a, bv(1, 8)), bv(0, 8)))
        assert result.is_sat
        assert result.model["a"] == 0xff

    def test_unsatisfiable_conjunction(self):
        a = bvvar("a", 8)
        result = check_sat([bveq(a, bv(3, 8)), bveq(a, bv(4, 8))])
        assert result.is_unsat

    def test_rejects_wide_constraints(self):
        with pytest.raises(ValueError):
            check_sat(bvvar("a", 8))

    def test_deadline_in_the_past_reports_unknown(self):
        a, b = bvvar("a", 12), bvvar("b", 12)
        hard = bveq(bvmul(a, b), bv(3 * 5 * 7 * 11, 12))
        result = check_sat(hard, deadline=time.monotonic() - 1.0)
        assert result.is_unknown

    def test_model_satisfies_constraint(self):
        a, b = bvvar("a", 6), bvvar("b", 6)
        constraint = bvand(bvult(a, b), bveq(bvand(a, b), bv(4, 6)))
        result = check_sat(constraint)
        assert result.is_sat
        env = {"a": result.model["a"], "b": result.model["b"]}
        assert evaluate(constraint, env) == 1


class TestEquivalence:
    def test_structurally_identical(self):
        a, b = bvvar("a", 8), bvvar("b", 8)
        result = check_equivalence(bvadd(a, b), bvadd(b, a))
        assert result.is_equivalent
        assert result.strategy in ("structural", "normalise")

    def test_semantically_equal_but_structurally_different(self):
        a = bvvar("a", 6)
        lhs = bvmul(a, bv(2, 6))
        rhs = bvadd(a, a)
        result = check_equivalence(lhs, rhs)
        assert result.is_equivalent

    def test_different_circuits_give_counterexample(self):
        a, b = bvvar("a", 8), bvvar("b", 8)
        result = check_equivalence(bvadd(a, b), bvor(a, b))
        assert result.is_different
        env = result.counterexample.as_dict()
        assert evaluate(bvadd(a, b), env) != evaluate(bvor(a, b), env)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            check_equivalence(bvvar("a", 8), bvvar("b", 4))

    def test_wide_datapath_collapses_structurally(self):
        """The zero-extended DSP-style datapath must prove equal without SAT."""
        width = 8
        a, b, c, d = (bvvar(n, width) for n in "abcd")
        spec = bvand(bvmul(bvadd(a, b), c), d)
        wide = bvextract(width - 1, 0,
                         bvand(bvmul(bvadd(zero_extend(a, 8), zero_extend(b, 8)),
                                     zero_extend(c, 8)),
                               zero_extend(d, 8)))
        result = check_equivalence(spec, wide)
        assert result.is_equivalent
        assert result.strategy in ("structural", "normalise")


class TestCegis:
    def test_lut2_and_function(self):
        a, b = bvvar("a", 1), bvvar("b", 1)
        lut_memory = bvvar("mem", 4)
        index = bvconcat(b, a)
        lut_out = bvextract(0, 0, bvlshr(lut_memory, zero_extend(index, 2)))
        result = synthesize(Obligation(bvand(a, b), lut_out), {"mem": 4})
        assert result.succeeded
        assert result.hole_values["mem"] == 0b1000

    def test_lut2_xor_function(self):
        a, b = bvvar("a", 1), bvvar("b", 1)
        lut_memory = bvvar("mem", 4)
        index = bvconcat(b, a)
        lut_out = bvextract(0, 0, bvlshr(lut_memory, zero_extend(index, 2)))
        result = synthesize(Obligation(bvxor(a, b), lut_out), {"mem": 4})
        assert result.succeeded
        assert result.hole_values["mem"] == 0b0110

    def test_operation_selector_hole(self):
        width = 8
        a, b, c = bvvar("a", width), bvvar("b", width), bvvar("c", width)
        selector = bvvar("sel", 2)
        product = bvmul(a, b)
        sketch = bvite(bveq(selector, bv(0, 2)), bvand(product, c),
                       bvite(bveq(selector, bv(1, 2)), bvor(product, c),
                             bvadd(product, c)))
        spec = bvadd(bvmul(a, b), c)
        result = synthesize(Obligation(spec, sketch), {"sel": 2})
        assert result.succeeded
        # The else-branch of the selector covers both remaining encodings.
        assert result.hole_values["sel"] in (2, 3)

    def test_unsat_when_sketch_cannot_express_spec(self):
        width = 8
        a, b, c = bvvar("a", width), bvvar("b", width), bvvar("c", width)
        selector = bvvar("sel", 1)
        product = bvmul(a, b)
        sketch = bvite(selector, bvand(product, c), bvor(product, c))
        spec = bvxor(bvmul(a, b), c)
        result = synthesize(Obligation(spec, sketch), {"sel": 1})
        assert result.status == "unsat"

    def test_hole_constraints_restrict_solutions(self):
        a = bvvar("a", 4)
        hole = bvvar("k", 4)
        sketch = bvadd(a, hole)
        spec = bvadd(a, bv(5, 4))
        forbidden = bvne(hole, bv(5, 4))
        result = synthesize(Obligation(spec, sketch), {"k": 4},
                            hole_constraints=[forbidden])
        assert result.status == "unsat"

    def test_multiple_obligations(self):
        """Sequential-style synthesis: the same hole must satisfy both timesteps."""
        a0, a1 = bvvar("a@0", 4), bvvar("a@1", 4)
        hole = bvvar("k", 4)
        obligations = [
            Obligation(bvadd(a0, bv(3, 4)), bvadd(a0, hole)),
            Obligation(bvadd(a1, bv(3, 4)), bvadd(a1, hole)),
        ]
        result = synthesize(obligations, {"k": 4})
        assert result.succeeded
        assert result.hole_values["k"] == 3

    def test_no_obligations_rejected(self):
        with pytest.raises(ValueError):
            synthesize([], {"k": 4})

    def test_width_mismatch_in_obligation_rejected(self):
        with pytest.raises(ValueError):
            Obligation(bvvar("a", 4), bvvar("b", 5))

    def test_timeout_reports_unknown(self):
        a, b = bvvar("a", 12), bvvar("b", 12)
        hole = bvvar("k", 12)
        sketch = bvmul(bvmul(a, b), hole)
        spec = bvmul(bvmul(a, b), bv(7, 12))
        result = synthesize(Obligation(spec, sketch), {"k": 12},
                            deadline=time.monotonic() - 1.0)
        assert result.status == "unknown"
