"""Shared test constants and helpers (imported by conftest fixtures).

Lives in its own module (not ``conftest.py``) so test files can import the
constants directly — ``import conftest`` is ambiguous from the repo root,
where ``benchmarks/conftest.py`` shadows this directory's.
"""

from repro.workloads import sample_workloads

#: 4-bit bitwise AND — the cheapest mappable design (LUT templates).
AND4 = ("module f(input [3:0] a, b, output [3:0] out);"
        " assign out = a & b; endmodule")
#: 4-bit adder (carry-chain / LUT templates).
ADD4 = ("module g(input [3:0] a, b, output [3:0] out);"
        " assign out = a + b; endmodule")
#: 8-bit combinational multiply — the cheapest DSP-template design.
MUL8 = ("module mul(input clk, input [7:0] a, b, output [7:0] out);"
        " assign out = a * b; endmodule")


def small_workloads(count: int = 4, architecture: str = "intel-cyclone10lp",
                    seed: int = 0, max_width: int = 8):
    """A small stratified workload sample (quick to synthesize)."""
    return sample_workloads(architecture, count, seed=seed,
                            max_width=max_width)
