"""Tests for the vendor primitive library, YAML parser and architecture
descriptions."""

import pytest

from repro.arch import available_architectures, load_architecture
from repro.arch.yamllite import YamlError, loads
from repro.core.interp import interpret
from repro.vendor import PrimitiveLibrary, load_primitive
from repro.vendor.library import KNOWN_PRIMITIVES


def _constant_streams(values):
    return {name: (lambda v: (lambda t: v))(value) for name, value in values.items()}


class TestYamlLite:
    def test_scalars(self):
        assert loads("a: 3\nb: true\nc: hello\n") == {"a": 3, "b": True, "c": "hello"}

    def test_hex_and_quoted_strings(self):
        assert loads("a: 0x10\nb: 'text'\n") == {"a": 16, "b": "text"}

    def test_nested_mapping(self):
        data = loads("outer:\n  inner:\n    value: 1\n")
        assert data == {"outer": {"inner": {"value": 1}}}

    def test_list_of_scalars(self):
        assert loads("items:\n  - 1\n  - 2\n") == {"items": [1, 2]}

    def test_list_of_mappings(self):
        data = loads("items:\n  - name: x\n    width: 4\n  - name: y\n    width: 2\n")
        assert data["items"] == [{"name": "x", "width": 4}, {"name": "y", "width": 2}]

    def test_inline_collections(self):
        data = loads("port: { name: A, width: 30 }\nlist: [1, 2, 3]\n")
        assert data == {"port": {"name": "A", "width": 30}, "list": [1, 2, 3]}

    def test_comments_ignored(self):
        assert loads("# header\na: 1  # trailing\n") == {"a": 1}

    def test_malformed_inline_map(self):
        with pytest.raises(YamlError):
            loads("a: { broken\n")


class TestVendorLibrary:
    def test_every_known_primitive_imports(self):
        library = PrimitiveLibrary()
        for name in library.available():
            model = library.load(name)
            assert model.semantics.node_count() > 0
            assert model.source_lines > 0

    def test_cache_returns_same_object(self):
        library = PrimitiveLibrary()
        assert library.load("LUT6") is library.load("LUT6")

    def test_unknown_primitive_rejected(self):
        with pytest.raises(KeyError):
            PrimitiveLibrary().load("NOT_A_PRIMITIVE")

    def test_table1_rows_cover_all_primitives(self):
        rows = PrimitiveLibrary().table1_rows()
        assert {row["primitive"] for row in rows} == set(KNOWN_PRIMITIVES)

    def test_lut6_semantics(self):
        lut = load_primitive("LUT6").semantics
        env = _constant_streams({"I0": 1, "I1": 1, "I2": 0, "I3": 0, "I4": 0, "I5": 0,
                                 "INIT": 1 << 3})
        assert interpret(lut, env, 0) == 1

    def test_frac_lut4_mode_zero(self):
        lut = load_primitive("frac_lut4").semantics
        env = _constant_streams({"in": 5, "mode": 0, "sram": 1 << 5})
        assert interpret(lut, env, 0) == 1

    def test_carry8_adds(self):
        carry = load_primitive("CARRY8").semantics
        # S = a ^ b, DI = a implements a + b on the carry chain.
        a, b = 0x57, 0x23
        env = _constant_streams({"S": a ^ b, "DI": a, "CI": 0})
        assert interpret(carry, env, 0) == (a + b) & 0xff

    def test_mac_mult_combinational(self):
        mult = load_primitive("cyclone10lp_mac_mult").semantics
        env = _constant_streams({"dataa": 100, "datab": 200, "REG_INPUTA": 0,
                                 "REG_INPUTB": 0, "REG_OUTPUT": 0})
        assert interpret(mult, env, 0) == 20000

    def test_mac_mult_registered_latency(self):
        mult = load_primitive("cyclone10lp_mac_mult").semantics
        env = _constant_streams({"dataa": 7, "datab": 9, "REG_INPUTA": 1,
                                 "REG_INPUTB": 1, "REG_OUTPUT": 1})
        assert interpret(mult, env, 0) == 0
        assert interpret(mult, env, 2) == 63


class TestDsp48e2Model:
    def _env(self, **overrides):
        base = {"A": 0, "B": 0, "C": 0, "D": 0, "OPMODE": 0, "ALUMODE": 0, "CARRYIN": 0,
                "AREG": 0, "BREG": 0, "CREG": 0, "DREG": 0, "ADREG": 0, "MREG": 0,
                "PREG": 0, "AMULTSEL": 0, "BMULTSEL": 0, "PREADDINSEL": 0,
                "USE_PREADD": 0, "PREADD_SUB": 0}
        base.update(overrides)
        return _constant_streams(base)

    def test_plain_multiply(self):
        dsp = load_primitive("DSP48E2").semantics
        env = self._env(A=12, B=11, OPMODE=0b000000101)
        assert interpret(dsp, env, 0) == 132

    def test_preadd_multiply_and(self):
        dsp = load_primitive("DSP48E2").semantics
        env = self._env(A=5, B=3, C=0xff, D=2, OPMODE=0b000110101, ALUMODE=0b1100,
                        AMULTSEL=1, USE_PREADD=1)
        assert interpret(dsp, env, 0) == ((2 + 5) * 3) & 0xff

    def test_preadd_subtract(self):
        dsp = load_primitive("DSP48E2").semantics
        env = self._env(A=5, B=3, D=9, OPMODE=0b000000101, AMULTSEL=1,
                        USE_PREADD=1, PREADD_SUB=1)
        assert interpret(dsp, env, 0) == (9 - 5) * 3

    def test_multiply_minus_c(self):
        dsp = load_primitive("DSP48E2").semantics
        env = self._env(A=10, B=10, C=30, OPMODE=0b000110101, ALUMODE=0b0001)
        assert interpret(dsp, env, 0) == 100 - 30

    def test_fully_pipelined_latency_three(self):
        dsp = load_primitive("DSP48E2").semantics
        env = self._env(A=6, B=7, OPMODE=0b000000101, AREG=1, BREG=1, MREG=1, PREG=1)
        assert interpret(dsp, env, 2) == 0
        assert interpret(dsp, env, 3) == 42

    def test_two_stage_a_pipeline(self):
        dsp = load_primitive("DSP48E2").semantics
        env = self._env(A=6, B=7, OPMODE=0b000000101, AREG=2, BREG=2, PREG=1)
        assert interpret(dsp, env, 3) == 42


class TestArchitectureDescriptions:
    def test_four_architectures_available(self):
        assert set(available_architectures()) == {
            "intel-cyclone10lp", "lattice-ecp5", "sofa", "xilinx-ultrascale-plus"}

    def test_aliases(self):
        assert load_architecture("xilinx").name == "xilinx-ultrascale-plus"
        assert load_architecture("ecp5").name == "lattice-ecp5"

    def test_unknown_architecture(self):
        with pytest.raises(KeyError):
            load_architecture("virtex-2-pro")

    def test_xilinx_dsp_internal_data(self):
        arch = load_architecture("xilinx-ultrascale-plus")
        dsp = arch.implementation("DSP")
        assert dsp.module == "DSP48E2"
        assert "OPMODE" in dsp.internal_data
        assert dsp.internal_data["OPMODE"] == 9
        assert dsp.output_port == "P"
        assert dsp.clock == "clk"

    def test_sofa_has_no_dsp(self):
        arch = load_architecture("sofa")
        assert not arch.implements("DSP")
        assert arch.lut_size() == 4

    def test_interface_inputs_used(self):
        sofa_lut = load_architecture("sofa").implementation("LUT")
        assert set(sofa_lut.interface_inputs_used()) == {"I0", "I1", "I2", "I3"}

    def test_description_sizes_are_small(self):
        """Architecture descriptions stay tens-to-hundreds of lines (§5.2)."""
        for name in available_architectures():
            assert load_architecture(name).source_lines < 250

    def test_every_description_module_is_importable(self):
        library = PrimitiveLibrary()
        for name in available_architectures():
            for impl in load_architecture(name).implementations:
                assert impl.module in library.available()
