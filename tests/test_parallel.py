"""Tests for the parallel execution layer: sharded sweeps, the
process-based portfolio race, record transport, and baseline labeling."""

import multiprocessing
import time
import warnings

import pytest

from repro.baselines import YosysLikeMapper, sota_for
from repro.engine.backends import SolverBackend
from repro.engine.parallel import SessionSpec, run_lakeroad_parallel, run_sweep
from repro.engine.session import MappingSession
from repro.harness.runner import (
    ExperimentConfig,
    MappingRecord,
    records_from_jsonl,
    records_to_jsonl,
    run_baselines,
    run_lakeroad,
)
from repro.sat.cnf import CNF
from repro.sat.portfolio import ProcessPortfolio, SatPortfolio, make_portfolio
from repro.sat.solver import SatResult
from repro.workloads import sample_workloads

from _fixtures import AND4, small_workloads as _fast_benchmarks

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="requires the fork start method")


def _comparable(record: MappingRecord) -> dict:
    """Record content minus the wall-clock-dependent fields."""
    data = record.to_dict()
    data.pop("time_seconds")
    data.pop("solver_solve_seconds")
    data.pop("cache_hit")
    return data


# --------------------------------------------------------------------------- #
# Sharded sweeps
# --------------------------------------------------------------------------- #
class TestShardedSweep:
    def test_parallel_records_match_serial_in_content_and_order(self):
        """The ISSUE's acceptance bar: workers=4 must reproduce the serial
        records exactly (modulo timing fields), identically ordered."""
        benchmarks = _fast_benchmarks(4)
        config = ExperimentConfig(validate=False)
        serial = run_lakeroad_parallel(benchmarks, config, workers=1)
        parallel = run_lakeroad_parallel(benchmarks, config, workers=4)
        assert [_comparable(r) for r in serial] == [_comparable(r) for r in parallel]
        assert [r.benchmark for r in parallel] == [b.name for b in benchmarks]

    def test_run_sweep_aggregates_worker_stats(self):
        benchmarks = _fast_benchmarks(4)
        result = run_sweep(benchmarks, ExperimentConfig(validate=False), workers=2)
        assert result.workers == 2
        assert len(result.records) == len(benchmarks)
        stats = result.cache_stats
        # Every benchmark was either synthesized (a miss) or served from a
        # worker's warm cache (a hit).
        assert stats["hits"] + stats["misses"] == len(benchmarks)
        assert sum(result.portfolio_wins.values()) >= 0

    def test_workers_capped_at_benchmark_count(self):
        benchmarks = _fast_benchmarks(2)
        result = run_sweep(benchmarks, ExperimentConfig(validate=False), workers=16)
        assert result.workers == 2
        assert len(result.records) == 2

    def test_run_lakeroad_workers_knob_delegates_to_sharding(self):
        benchmarks = _fast_benchmarks(3)
        config = ExperimentConfig(validate=False)
        serial = run_lakeroad(benchmarks, config)
        sharded = run_lakeroad(benchmarks, config, workers=2)
        assert [_comparable(r) for r in serial] == [_comparable(r) for r in sharded]

    def test_run_lakeroad_workers_from_config(self):
        benchmarks = _fast_benchmarks(2)
        config = ExperimentConfig(validate=False, workers=2)
        records = run_lakeroad(benchmarks, config)
        assert [r.benchmark for r in records] == [b.name for b in benchmarks]

    def test_injected_session_rejected_for_multiprocess_runs(self):
        benchmarks = _fast_benchmarks(2)
        with pytest.raises(ValueError):
            run_lakeroad(benchmarks, ExperimentConfig(validate=False),
                         session=MappingSession(), workers=2)
        with pytest.raises(ValueError):
            run_sweep(benchmarks, ExperimentConfig(validate=False),
                      session=MappingSession(), workers=2)

    def test_empty_benchmark_list(self):
        result = run_sweep([], ExperimentConfig(validate=False), workers=4)
        assert result.records == [] and result.workers == 1

    def test_serial_run_lakeroad_honours_config_cache_dir(self, tmp_path):
        """Regression: the serial (workers=1) path must build its session
        from the config's cache_dir/portfolio knobs, not silently fall back
        to the default in-memory session."""
        benchmarks = _fast_benchmarks(2)
        config = ExperimentConfig(validate=False, cache_dir=str(tmp_path))
        cold = run_lakeroad(benchmarks, config)
        # (Later cold records may legitimately hit in-session: sign twins
        # share a canonical fingerprint.  The first one cannot.)
        assert not cold[0].cache_hit
        warm = run_lakeroad(benchmarks, config)  # fresh session, same disk
        assert all(r.cache_hit for r in warm)

    def test_workers_share_the_disk_cache(self, tmp_path):
        benchmarks = _fast_benchmarks(4)
        config = ExperimentConfig(validate=False, cache_dir=str(tmp_path))
        cold = run_sweep(benchmarks, config, workers=2)
        warm = run_sweep(benchmarks, config, workers=2)
        assert warm.record_cache_hits == len(benchmarks)
        assert warm.hit_rate == 1.0
        assert [_comparable(r) for r in cold.records] == \
            [_comparable(r) for r in warm.records]

    def test_session_spec_builds_configured_sessions(self, tmp_path):
        spec = SessionSpec(portfolio="sequential", cache_dir=str(tmp_path),
                           enable_cache=False)
        session = spec.build()
        assert not session.portfolio.concurrent
        assert not session.enable_cache


# --------------------------------------------------------------------------- #
# Record transport
# --------------------------------------------------------------------------- #
class TestRecordTransport:
    def _record(self):
        return MappingRecord(tool="lakeroad", architecture="sofa", benchmark="b",
                             form="mul", width=8, stages=1, signed=True,
                             outcome="success", time_seconds=1.25, dsps=1,
                             luts=2, registers=3, cache_hit=True,
                             tool_variant="")

    def test_dict_round_trip(self):
        record = self._record()
        assert MappingRecord.from_dict(record.to_dict()) == record

    def test_from_dict_ignores_unknown_keys(self):
        data = self._record().to_dict()
        data["future_field"] = "whatever"
        assert MappingRecord.from_dict(data) == self._record()

    def test_jsonl_round_trip(self, tmp_path):
        records = [self._record(),
                   MappingRecord(tool="yosys", architecture="lattice-ecp5",
                                 benchmark="c", form="mul_add", width=10,
                                 stages=0, signed=False, outcome="fail",
                                 time_seconds=0.5, tool_variant="yosys")]
        path = records_to_jsonl(records, tmp_path / "records.jsonl")
        assert records_from_jsonl(path) == records

    def test_jsonl_skips_blank_lines(self, tmp_path):
        path = tmp_path / "records.jsonl"
        records_to_jsonl([self._record()], path)
        path.write_text(path.read_text() + "\n\n")
        assert len(records_from_jsonl(path)) == 1


# --------------------------------------------------------------------------- #
# Baseline tool labeling
# --------------------------------------------------------------------------- #
class TestBaselineLabels:
    def test_records_carry_family_and_variant(self):
        benchmarks = sample_workloads("lattice-ecp5", 2, seed=0, max_width=8)
        records = run_baselines(benchmarks)
        by_tool = {record.tool for record in records}
        assert by_tool == {"sota", "yosys"}
        variants = {record.tool_variant for record in records if record.tool == "sota"}
        assert variants == {"sota-lattice"}
        assert all(record.tool_variant == "yosys"
                   for record in records if record.tool == "yosys")

    def test_labels_come_from_the_mapper_not_list_position(self):
        assert sota_for("intel-cyclone10lp").family == "sota"
        assert sota_for("intel-cyclone10lp").name == "sota-intel"
        assert YosysLikeMapper().family == "yosys"
        assert YosysLikeMapper().name == "yosys"


# --------------------------------------------------------------------------- #
# Process-based portfolio racing
# --------------------------------------------------------------------------- #
def _cnf():
    return CNF(clauses=[[1, 2], [-1], [-2, 3]])


def _fast_unsat(cnf, deadline, assumptions, should_stop=None):
    return SatResult(status="unsat")


def _slow_sat(cnf, deadline, assumptions, should_stop=None):
    time.sleep(30)
    return SatResult(status="sat", model={})


def _unknown(cnf, deadline, assumptions, should_stop=None):
    return SatResult(status="unknown")


def _crash(cnf, deadline, assumptions, should_stop=None):
    raise RuntimeError("boom")


@needs_fork
class TestProcessPortfolio:
    def test_winner_returns_without_waiting_for_hard_killed_loser(self):
        portfolio = ProcessPortfolio([SolverBackend("slow", _slow_sat),
                                      SolverBackend("fast", _fast_unsat)])
        start = time.monotonic()
        result, winner = portfolio.solve(_cnf())
        elapsed = time.monotonic() - start
        assert winner == "fast" and result.is_unsat
        # The 30 s sleeper is terminated, not joined to completion.
        assert elapsed < 5.0
        assert portfolio.win_counts() == {"fast": 1}

    def test_all_unknown_returns_unknown(self):
        portfolio = ProcessPortfolio([SolverBackend("u1", _unknown),
                                      SolverBackend("u2", _unknown)])
        result, winner = portfolio.solve(_cnf(), deadline=time.monotonic() + 10.0)
        assert result.is_unknown and winner == "none"

    def test_crashing_member_loses_race(self):
        portfolio = ProcessPortfolio([SolverBackend("crash", _crash),
                                      SolverBackend("steady", _fast_unsat)])
        result, winner = portfolio.solve(_cnf())
        assert winner == "steady" and result.is_unsat

    def test_all_members_crashing_raises(self):
        portfolio = ProcessPortfolio([SolverBackend("crash-a", _crash),
                                      SolverBackend("crash-b", _crash)])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with pytest.raises(RuntimeError, match="boom"):
                portfolio.solve(_cnf())

    def test_deadline_hard_kills_all_members(self):
        portfolio = ProcessPortfolio([SolverBackend("s1", _slow_sat),
                                      SolverBackend("s2", _slow_sat)])
        start = time.monotonic()
        result, winner = portfolio.solve(_cnf(), deadline=time.monotonic() + 0.3)
        assert result.is_unknown and winner == "none"
        assert time.monotonic() - start < 5.0

    def test_default_members_solve_real_cnf(self):
        portfolio = ProcessPortfolio()
        result, winner = portfolio.solve(_cnf(), deadline=time.monotonic() + 30.0)
        assert result.is_sat
        assert winner in portfolio.member_names

    def test_single_member_short_circuits_to_sequential(self):
        calls = []

        def observed(cnf, deadline, assumptions, should_stop=None):
            calls.append(True)  # runs in-process, so the append is visible
            return SatResult(status="unsat")

        portfolio = ProcessPortfolio([SolverBackend("only", observed)])
        result, winner = portfolio.solve(_cnf())
        assert result.is_unsat and winner == "only" and calls


class TestPortfolioFactory:
    def test_make_portfolio_kinds(self):
        assert isinstance(make_portfolio("process"), ProcessPortfolio)
        thread = make_portfolio("thread")
        assert isinstance(thread, SatPortfolio) and thread.concurrent
        sequential = make_portfolio("sequential")
        assert not sequential.concurrent
        with pytest.raises(ValueError):
            make_portfolio("quantum")

    def test_make_portfolio_by_names(self):
        portfolio = make_portfolio("thread", names=["cdcl"])
        assert portfolio.member_names == ["cdcl"]

    @needs_fork
    def test_session_portfolio_switch_end_to_end(self):
        session = MappingSession(portfolio="process")
        assert isinstance(session.portfolio, ProcessPortfolio)
        assert session.solver.portfolio is session.portfolio
        result = session.map_verilog(AND4, template="bitwise", arch="sofa",
                                     timeout_seconds=60)
        assert result.status == "success"
