"""Tests for ℒlr: syntax, well-formedness, interpretation, sublanguages."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bv import bv, evaluate
from repro.bv.eval import var_widths
from repro.core.interp import (
    ConcreteInterpreter,
    SymbolicInterpreter,
    hole_variable_name,
    input_variable_name,
    interpret,
    symbolic_output,
)
from repro.core.lang import (
    BVNode,
    HoleNode,
    OpNode,
    PrimMetadata,
    PrimNode,
    Program,
    ProgramBuilder,
    RegNode,
    VarNode,
)
from repro.core.sketch import Sketch, clone_program, fill_holes
from repro.core.sublang import classify, is_behavioral, is_sketch, is_structural
from repro.core.transform import fold_constants, prune_unreachable, simplify_structural
from repro.core.wellformed import WellFormednessError, check_well_formed, is_well_formed


def _counter_design(width=8):
    """out <= out + a (an accumulator with register feedback)."""
    builder = ProgramBuilder()
    a = builder.var("a", width)
    # Allocate the register with a placeholder, then patch the feedback.
    placeholder = builder.const(0, width)
    reg = builder.reg(placeholder, 0, width)
    total = builder.op("add", [reg, a], width)
    builder.nodes[reg] = RegNode(total, 0, width)
    return builder.build(reg)


def _pipeline_design(width=8, stages=2):
    builder = ProgramBuilder()
    a = builder.var("a", width)
    b = builder.var("b", width)
    value = builder.op("mul", [builder.op("add", [a, b], width), b], width)
    for _ in range(stages):
        value = builder.reg(value, 0, width)
    return builder.build(value)


class TestProgramStructure:
    def test_free_vars(self):
        program = _pipeline_design()
        assert program.free_vars() == frozenset({"a", "b"})

    def test_var_widths(self):
        assert _pipeline_design(width=5).var_widths() == {"a": 5, "b": 5}

    def test_builder_rejects_unknown_operator(self):
        builder = ProgramBuilder()
        a = builder.var("a", 4)
        with pytest.raises(ValueError):
            builder.op("frobnicate", [a], 4)

    def test_builder_rejects_foreign_root(self):
        builder = ProgramBuilder()
        builder.var("a", 4)
        with pytest.raises(ValueError):
            builder.build(999999999)

    def test_node_count_includes_subprograms(self):
        inner_builder = ProgramBuilder()
        x = inner_builder.var("x", 4)
        inner = inner_builder.build(inner_builder.op("not", [x], 4))
        outer_builder = ProgramBuilder()
        a = outer_builder.var("a", 4)
        prim = outer_builder.prim({"x": a}, inner, 4, PrimMetadata("INV"))
        program = outer_builder.build(prim)
        assert program.node_count() == len(program.nodes) + len(inner.nodes)

    def test_holes_discovered_recursively(self):
        builder = ProgramBuilder()
        hole = builder.hole("H", 4)
        program = builder.build(hole)
        assert set(program.holes()) == {"H"}


class TestWellFormedness:
    def test_valid_program(self):
        witness = check_well_formed(_pipeline_design())
        assert all(weight >= 0 for weight in witness.values())

    def test_register_feedback_is_allowed(self):
        assert is_well_formed(_counter_design())

    def test_w1_root_must_exist(self):
        program = Program(root=12345, nodes={1: BVNode(0, 4)})
        with pytest.raises(WellFormednessError) as excinfo:
            check_well_formed(program)
        assert excinfo.value.condition == "W1"

    def test_w3_dangling_reference(self):
        program = Program(root=1, nodes={1: OpNode("add", (2, 3), 4)})
        with pytest.raises(WellFormednessError) as excinfo:
            check_well_formed(program)
        assert excinfo.value.condition == "W3"

    def test_w5_prim_binding_mismatch(self):
        inner_builder = ProgramBuilder()
        x = inner_builder.var("x", 4)
        inner = inner_builder.build(inner_builder.op("not", [x], 4))
        outer_builder = ProgramBuilder()
        a = outer_builder.var("a", 4)
        prim = outer_builder.prim({"y": a}, inner, 4)  # binds 'y', sem needs 'x'
        with pytest.raises(WellFormednessError) as excinfo:
            check_well_formed(outer_builder.build(prim))
        assert excinfo.value.condition == "W5"

    def test_w6_combinational_loop_detected(self):
        nodes = {1: OpNode("add", (1, 2), 4), 2: BVNode(1, 4)}
        program = Program(root=1, nodes=nodes)
        with pytest.raises(WellFormednessError) as excinfo:
            check_well_formed(program)
        assert excinfo.value.condition == "W6"

    def test_w2_shared_semantics_program_rejected(self):
        inner_builder = ProgramBuilder()
        x = inner_builder.var("x", 4)
        inner = inner_builder.build(inner_builder.op("not", [x], 4))
        outer_builder = ProgramBuilder()
        a = outer_builder.var("a", 4)
        p1 = outer_builder.prim({"x": a}, inner, 4)
        p2 = outer_builder.prim({"x": p1}, inner, 4)  # same semantics object
        with pytest.raises(WellFormednessError) as excinfo:
            check_well_formed(outer_builder.build(p2))
        assert excinfo.value.condition == "W2"


class TestSublanguages:
    def test_behavioral_fragment(self):
        assert is_behavioral(_pipeline_design())
        assert classify(_pipeline_design()) == "behavioral"

    def test_structural_fragment(self):
        inner_builder = ProgramBuilder()
        x = inner_builder.var("x", 4)
        inner = inner_builder.build(inner_builder.op("not", [x], 4))
        builder = ProgramBuilder()
        a = builder.var("a", 4)
        prim = builder.prim({"x": a}, inner, 4, PrimMetadata("INV"))
        program = builder.build(prim)
        assert is_structural(program)
        assert not is_behavioral(program)

    def test_sketch_fragment_allows_holes(self):
        builder = ProgramBuilder()
        hole = builder.hole("H", 4)
        program = builder.build(hole)
        assert is_sketch(program)
        assert not is_structural(program)

    def test_registers_not_structural(self):
        assert not is_structural(_pipeline_design())


class TestInterpreter:
    def test_combinational_evaluation(self):
        program = _pipeline_design(stages=0)
        env = {"a": lambda t: 3, "b": lambda t: 4}
        assert interpret(program, env, 0) == ((3 + 4) * 4) & 0xff

    def test_pipeline_latency(self):
        program = _pipeline_design(stages=2)
        # Inputs change every cycle; output at t reflects inputs at t-2.
        env = {"a": [1, 2, 3, 4, 5], "b": [1, 1, 1, 1, 1]}
        assert interpret(program, env, 2) == (1 + 1) * 1
        assert interpret(program, env, 3) == (2 + 1) * 1

    def test_register_initial_value(self):
        program = _pipeline_design(stages=1)
        env = {"a": [7], "b": [9]}
        assert interpret(program, env, 0) == 0

    def test_accumulator_feedback(self):
        program = _counter_design()
        env = {"a": [1, 2, 3, 4, 5]}
        # reg@t = sum of a[0..t-1]
        assert interpret(program, env, 0) == 0
        assert interpret(program, env, 3) == 1 + 2 + 3

    def test_missing_stream_raises(self):
        with pytest.raises(KeyError):
            interpret(_pipeline_design(stages=0), {"a": [1]}, 0)

    def test_hole_cannot_be_interpreted(self):
        builder = ProgramBuilder()
        hole = builder.hole("H", 4)
        with pytest.raises(ValueError):
            interpret(builder.build(hole), {}, 0)

    def test_prim_node_interpretation(self):
        inner_builder = ProgramBuilder()
        x = inner_builder.var("x", 8)
        y = inner_builder.var("y", 8)
        inner = inner_builder.build(inner_builder.op("mul", [x, y], 8))
        builder = ProgramBuilder()
        a = builder.var("a", 8)
        b = builder.var("b", 8)
        prim = builder.prim({"x": a, "y": b}, inner, 8, PrimMetadata("MUL"))
        program = builder.build(prim)
        assert interpret(program, {"a": [6], "b": [7]}, 0) == 42

    def test_symbolic_matches_concrete(self):
        program = _pipeline_design(stages=2)
        rng = random.Random(0)
        symbolic = symbolic_output(program, 3)
        for _ in range(10):
            streams = {"a": [rng.getrandbits(8) for _ in range(4)],
                       "b": [rng.getrandbits(8) for _ in range(4)]}
            env = {input_variable_name(name, t): streams[name][t]
                   for name in streams for t in range(4)}
            bound = {k: v for k, v in env.items() if k in var_widths(symbolic)}
            assert evaluate(symbolic, bound) == interpret(program, streams, 3)

    def test_symbolic_hole_names(self):
        builder = ProgramBuilder()
        a = builder.var("a", 4)
        hole = builder.hole("CONFIG", 4)
        program = builder.build(builder.op("add", [a, hole], 4))
        symbolic = symbolic_output(program, 0)
        assert hole_variable_name("CONFIG") in var_widths(symbolic)


class TestSketchAndTransform:
    def test_fill_holes_produces_constants(self):
        builder = ProgramBuilder()
        a = builder.var("a", 4)
        hole = builder.hole("K", 4)
        program = builder.build(builder.op("add", [a, hole], 4))
        sketch = Sketch(program)
        filled = fill_holes(sketch, {"K": 9})
        assert not filled.holes()
        assert interpret(filled, {"a": [1]}, 0) == 10

    def test_fill_holes_requires_all_values(self):
        builder = ProgramBuilder()
        hole = builder.hole("K", 4)
        sketch = Sketch(builder.build(hole))
        with pytest.raises(ValueError):
            fill_holes(sketch, {})

    def test_sketch_reports_hole_widths(self):
        builder = ProgramBuilder()
        h1 = builder.hole("A", 4)
        h2 = builder.hole("B", 2)
        program = builder.build(builder.op("concat", [h1, h2], 6))
        sketch = Sketch(program)
        assert sketch.hole_widths == {"A": 4, "B": 2}
        assert sketch.configuration_space_bits() == 6

    def test_clone_program_gets_fresh_ids(self):
        program = _pipeline_design()
        clone, id_map = clone_program(program)
        assert set(clone.nodes).isdisjoint(set(program.nodes))
        assert interpret(clone, {"a": [1, 2, 3], "b": [4, 4, 4]}, 2) == \
            interpret(program, {"a": [1, 2, 3], "b": [4, 4, 4]}, 2)

    def test_fold_constants_collapses_selection_mux(self):
        builder = ProgramBuilder()
        a = builder.var("a", 4)
        b = builder.var("b", 4)
        selector = builder.const(1, 1)
        chosen = builder.op("ite", [selector, a, b], 4)
        program = builder.build(chosen)
        folded = simplify_structural(program)
        # The mux disappears: the root is now the selected input.
        assert isinstance(folded[folded.root], VarNode)
        assert folded[folded.root].name == "a"

    def test_fold_constants_evaluates_ops(self):
        builder = ProgramBuilder()
        total = builder.op("add", [builder.const(3, 8), builder.const(4, 8)], 8)
        folded = fold_constants(builder.build(total))
        assert isinstance(folded[folded.root], BVNode)
        assert folded[folded.root].value == 7

    def test_prune_keeps_free_variables(self):
        builder = ProgramBuilder()
        a = builder.var("a", 4)
        builder.var("unused", 4)
        program = builder.build(builder.op("not", [a], 4))
        pruned = prune_unreachable(program)
        assert "unused" in pruned.free_vars()
