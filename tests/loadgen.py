"""Seeded, deterministic load generator for the service QoS layer.

Used two ways:

* **Imported by the QoS test-suite** (``tests/test_service_qos.py``): the
  profile/plan machinery produces a reproducible request schedule (which
  designs, in what order, with what think times) from one integer seed,
  and the drivers replay it either directly against a
  :class:`~repro.engine.service.SolverService` (``drive_service``) or over
  the socket layer (``drive_socket``).  ``make_fake_serve`` swaps the
  worker-side solve for a deterministic stand-in so scheduling tests do
  not depend on real solver wall-clock.
* **Run as a script by the CI ``qos-smoke`` job**: drives a flooder plus
  steady clients against a live ``lakeroad serve`` socket and, with
  ``--check``, asserts the QoS contract — zero starvation, bounded steady
  p95, at least one structured rejection for the flooder.

Every request targets a *distinct* design by construction: the front door
admits coalesced duplicates and cache hits for free, so identical repeats
would carry no load at all.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

_OPS = ("&", "|", "^", "+")

#: Fast architecture/template pair for real-solve smoke runs (~10 ms each).
DEFAULT_ARCH = "intel-cyclone10lp"
DEFAULT_TEMPLATE = "dsp"


def design_verilog(index: int, flavor: str = "q") -> str:
    """A small combinational design, distinct per ``(flavor, index)``.

    Width and both operators cycle with the index, and the trailing
    operand differs per flavor, so no two generated designs share a
    program fingerprint (64 distinct designs per flavor before the cycle
    repeats — callers should keep per-client index ranges disjoint).
    """
    width = 2 + (index % 4)
    op1 = _OPS[(index // 4) % 4]
    op2 = _OPS[(index // 16) % 4]
    tail = "a" if flavor == "q" or flavor.endswith("a") else "b"
    name = f"{flavor}{index}"
    return (f"module {name}(input [{width - 1}:0] a, "
            f"input [{width - 1}:0] b, output [{width - 1}:0] out);\n"
            f"  assign out = (a {op1} b) {op2} {tail};\n"
            f"endmodule\n")


def client_seed(seed: int, name: str) -> int:
    """A stable per-client sub-seed (crc32, not ``hash`` — the latter is
    salted per interpreter run and would unseed the schedule)."""
    return (int(seed) * 1_000_003 + zlib.crc32(name.encode())) & 0xFFFFFFFF


# --------------------------------------------------------------------------- #
# Profiles and deterministic plans
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Profile:
    """One client's traffic shape.

    ``kind`` is ``"flooder"`` (pipeline every request at once, never
    retry), ``"steady"`` (one request at a time with think-time gaps), or
    ``"bursty"`` (bursts of ``burst`` concurrent requests separated by
    gaps).  ``base``/``flavor`` select this client's design range; keep
    ranges disjoint across profiles so clients never coalesce with each
    other unless a test wants them to.
    """

    name: str
    kind: str = "steady"
    requests: int = 8
    think_seconds: float = 0.01
    burst: int = 4
    retries: int = 0
    base: int = 0
    flavor: str = "q"
    #: Fake-solve delay hint carried in the request's ``form`` metadata
    #: (see :func:`make_fake_serve`); ``None`` leaves ``form`` empty.
    delay: Optional[float] = None


@dataclass(frozen=True)
class Step:
    """One planned request: which design, after how long a pause."""

    design_index: int
    think_seconds: float


@dataclass
class Outcome:
    """One request's fate as observed by the load generator."""

    client: str
    design_index: int
    status: str                # "ok" | "rejected" | "error"
    latency_seconds: float
    attempts: int = 1
    detail: str = ""


def plan(profile: Profile, seed: int) -> List[Step]:
    """The deterministic request schedule for one profile.

    Same ``(profile, seed)`` → same steps, independent of interpreter
    hash seeds or prior ``random`` use.  Flooders have zero think time by
    definition; steady/bursty think times jitter uniformly in
    [0.5, 1.5] × ``think_seconds`` from the client's own RNG stream.
    """
    rng = random.Random(client_seed(seed, profile.name))
    steps = []
    for i in range(profile.requests):
        if profile.kind == "flooder":
            think = 0.0
        else:
            think = profile.think_seconds * rng.uniform(0.5, 1.5)
        steps.append(Step(design_index=profile.base + i, think_seconds=think))
    return steps


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


def summarize(outcomes: Dict[str, List[Outcome]]) -> Dict[str, Dict[str, Any]]:
    """Per-client served/rejected/error counts and latency percentiles."""
    summary: Dict[str, Dict[str, Any]] = {}
    for client, results in outcomes.items():
        latencies = [o.latency_seconds for o in results if o.status == "ok"]
        summary[client] = {
            "requests": len(results),
            "served": sum(1 for o in results if o.status == "ok"),
            "rejected": sum(1 for o in results if o.status == "rejected"),
            "errors": sum(1 for o in results if o.status == "error"),
            "p50_latency_seconds": percentile(latencies, 0.50),
            "p95_latency_seconds": percentile(latencies, 0.95),
            "max_latency_seconds": max(latencies, default=0.0),
        }
    return summary


# --------------------------------------------------------------------------- #
# Deterministic worker stand-in (in-process tests)
# --------------------------------------------------------------------------- #
def encode_delay(delay: Optional[float]) -> str:
    """The ``form`` metadata carrying a fake-solve delay (metadata fields
    never enter the solve key, so delay hints cannot split coalescing)."""
    return "" if delay is None else f"delay={delay:.6f}"


def make_fake_serve(default_delay: float = 0.0, gate=None
                    ) -> Callable:
    """A deterministic replacement for ``repro.engine.service._serve_request``.

    Monkeypatch it onto the module **before** constructing the
    ``SolverService`` — the fork start method snapshots the patched module
    into every worker.  The stand-in honours a per-request delay from
    :func:`encode_delay` metadata (falling back to ``default_delay``) and,
    when ``gate`` (a ``multiprocessing.Event``) is given, blocks every
    solve until the test releases it — the saturation lever for
    backpressure and control-plane tests.
    """
    from repro.harness.runner import MappingRecord

    def fake_serve(session, request):
        if gate is not None:
            gate.wait()
        delay = default_delay
        if request.form.startswith("delay="):
            delay = float(request.form.split("=", 1)[1])
        if delay > 0:
            time.sleep(delay)
        return MappingRecord(tool="fake", architecture=request.arch,
                             benchmark=request.benchmark,
                             form=request.form,
                             width=request.width or 1,
                             stages=request.stages, signed=request.signed,
                             outcome="success", time_seconds=delay)

    return fake_serve


# --------------------------------------------------------------------------- #
# Drivers
# --------------------------------------------------------------------------- #
def make_request(profile: Profile, design_index: int,
                 arch: str = DEFAULT_ARCH,
                 template: str = DEFAULT_TEMPLATE,
                 use_cache: Optional[bool] = False):
    """The MapRequest for one planned step (distinct design, labelled
    with the client and index so outcomes are traceable)."""
    from repro.engine.service import MapRequest

    return MapRequest(verilog=design_verilog(design_index, profile.flavor),
                      arch=arch, template=template, use_cache=use_cache,
                      benchmark=f"{profile.name}-{design_index}",
                      form=encode_delay(profile.delay))


def drive_service(service, profiles: Sequence[Profile], seed: int = 0,
                  arch: str = DEFAULT_ARCH, template: str = DEFAULT_TEMPLATE,
                  use_cache: Optional[bool] = False,
                  result_timeout: float = 120.0
                  ) -> Dict[str, List[Outcome]]:
    """Replay every profile's plan directly against a SolverService.

    One thread per profile (clients are concurrent by definition);
    within a profile the plan order is respected exactly.  Rejections
    (:class:`~repro.engine.service.ServiceOverloaded`) become
    ``"rejected"`` outcomes; steady/bursty clients honour
    ``profile.retries`` by sleeping the server's hint between attempts.
    """
    from repro.engine.service import ServiceOverloaded

    outcomes: Dict[str, List[Outcome]] = {p.name: [] for p in profiles}
    lock = threading.Lock()

    def record(outcome: Outcome) -> None:
        with lock:
            outcomes[outcome.client].append(outcome)

    def submit_once(profile: Profile, step: Step):
        request = make_request(profile, step.design_index, arch=arch,
                               template=template, use_cache=use_cache)
        return service.submit(request, client=profile.name)

    def submit_with_retry(profile: Profile, step: Step) -> Outcome:
        started = time.monotonic()
        for attempt in range(profile.retries + 1):
            try:
                future = submit_once(profile, step)
            except ServiceOverloaded as exc:
                if attempt < profile.retries:
                    time.sleep(min(exc.retry_after_ms / 1000.0, 2.0))
                    continue
                return Outcome(profile.name, step.design_index, "rejected",
                               time.monotonic() - started,
                               attempts=attempt + 1, detail=str(exc))
            try:
                future.result(timeout=result_timeout)
            except Exception as exc:  # noqa: BLE001 - recorded, not raised
                return Outcome(profile.name, step.design_index, "error",
                               time.monotonic() - started,
                               attempts=attempt + 1, detail=str(exc))
            return Outcome(profile.name, step.design_index, "ok",
                           time.monotonic() - started, attempts=attempt + 1)
        raise AssertionError("unreachable")  # pragma: no cover

    def run_flooder(profile: Profile, steps: List[Step]) -> None:
        fired = []
        for step in steps:
            started = time.monotonic()
            try:
                fired.append((step, started, submit_once(profile, step)))
            except ServiceOverloaded as exc:
                record(Outcome(profile.name, step.design_index, "rejected",
                               time.monotonic() - started, detail=str(exc)))
        for step, started, future in fired:
            try:
                future.result(timeout=result_timeout)
                status, detail = "ok", ""
            except Exception as exc:  # noqa: BLE001
                status, detail = "error", str(exc)
            record(Outcome(profile.name, step.design_index, status,
                           time.monotonic() - started, detail=detail))

    def run_steady(profile: Profile, steps: List[Step]) -> None:
        for step in steps:
            if step.think_seconds:
                time.sleep(step.think_seconds)
            record(submit_with_retry(profile, step))

    def run_bursty(profile: Profile, steps: List[Step]) -> None:
        for start in range(0, len(steps), profile.burst):
            burst = steps[start:start + profile.burst]
            if burst[0].think_seconds:
                time.sleep(burst[0].think_seconds)
            threads = [threading.Thread(
                target=lambda s=step: record(submit_with_retry(profile, s)))
                for step in burst]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

    runners = {"flooder": run_flooder, "steady": run_steady,
               "bursty": run_bursty}
    threads = []
    for profile in profiles:
        runner = runners[profile.kind]
        threads.append(threading.Thread(
            target=runner, args=(profile, plan(profile, seed)),
            name=f"loadgen-{profile.name}"))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for results in outcomes.values():
        results.sort(key=lambda o: o.design_index)
    return outcomes


def drive_socket(socket_path, profiles: Sequence[Profile], seed: int = 0,
                 arch: str = DEFAULT_ARCH, template: str = DEFAULT_TEMPLATE,
                 result_timeout: float = 120.0
                 ) -> Dict[str, List[Outcome]]:
    """Replay every profile's plan over the socket layer.

    Each profile gets its own connection (so per-connection client ids
    and the explicit ``client`` field both see realistic traffic); the
    flooder pipelines its whole plan before collecting any response,
    steady/bursty clients round-trip with ``retry_overloaded``.
    """
    from repro.engine.service import ServiceClient

    outcomes: Dict[str, List[Outcome]] = {p.name: [] for p in profiles}
    lock = threading.Lock()

    def record(outcome: Outcome) -> None:
        with lock:
            outcomes[outcome.client].append(outcome)

    def payload(profile: Profile, step: Step) -> Dict[str, Any]:
        return {"op": "map",
                "verilog": design_verilog(step.design_index, profile.flavor),
                "arch": arch, "template": template, "use_cache": False,
                "client": profile.name,
                "benchmark": f"{profile.name}-{step.design_index}"}

    def classify(response: Dict[str, Any]) -> Tuple[str, str]:
        if response.get("ok"):
            return "ok", ""
        if response.get("error") == "overloaded":
            return "rejected", f"retry_after_ms={response.get('retry_after_ms')}"
        return "error", str(response.get("error"))

    def run_flooder(profile: Profile, steps: List[Step]) -> None:
        with ServiceClient(socket_path) as client:
            started = time.monotonic()
            futures = [(step, client.submit(payload(profile, step)))
                       for step in steps]
            for step, future in futures:
                try:
                    response = future.result(timeout=result_timeout)
                    status, detail = classify(response)
                except Exception as exc:  # noqa: BLE001
                    status, detail = "error", str(exc)
                record(Outcome(profile.name, step.design_index, status,
                               time.monotonic() - started, detail=detail))

    def run_paced(profile: Profile, steps: List[Step]) -> None:
        with ServiceClient(socket_path) as client:
            for step in steps:
                if step.think_seconds:
                    time.sleep(step.think_seconds)
                started = time.monotonic()
                try:
                    response = client.request(
                        payload(profile, step), timeout=result_timeout,
                        retry_overloaded=profile.retries)
                    status, detail = classify(response)
                except Exception as exc:  # noqa: BLE001
                    status, detail = "error", str(exc)
                record(Outcome(profile.name, step.design_index, status,
                               time.monotonic() - started, detail=detail))

    runners = {"flooder": run_flooder, "steady": run_paced,
               "bursty": run_paced}
    threads = [threading.Thread(target=runners[p.kind],
                                args=(p, plan(p, seed)),
                                name=f"loadgen-{p.name}")
               for p in profiles]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for results in outcomes.values():
        results.sort(key=lambda o: o.design_index)
    return outcomes


# --------------------------------------------------------------------------- #
# Script mode (the CI qos-smoke job)
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Seeded QoS load generator against a lakeroad serve "
                    "socket: one flooder plus N steady clients.")
    parser.add_argument("--socket", required=True,
                        help="unix socket path of the running server")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--flood", type=int, default=24,
                        help="flooder request count (pipelined at once)")
    parser.add_argument("--steady-clients", type=int, default=2)
    parser.add_argument("--steady-requests", type=int, default=6)
    parser.add_argument("--think", type=float, default=0.02,
                        help="mean steady think time in seconds")
    parser.add_argument("--arch", default=DEFAULT_ARCH)
    parser.add_argument("--template", default=DEFAULT_TEMPLATE)
    parser.add_argument("--max-p95", type=float, default=30.0,
                        help="--check bound on steady-client p95 seconds")
    parser.add_argument("--check", action="store_true",
                        help="assert the QoS contract (zero starvation, "
                             "bounded steady p95, >=1 flooder rejection)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    profiles = [Profile(name="flooder", kind="flooder", requests=args.flood,
                        retries=0, base=0, flavor="qa")]
    for i in range(args.steady_clients):
        profiles.append(Profile(name=f"steady-{i}", kind="steady",
                                requests=args.steady_requests,
                                think_seconds=args.think, retries=8,
                                base=1000 + 100 * i, flavor="qb"))
    outcomes = drive_socket(args.socket, profiles, seed=args.seed,
                            arch=args.arch, template=args.template)
    summary = summarize(outcomes)
    print(json.dumps(summary, indent=2, sort_keys=True))
    if not args.check:
        return 0
    failures = []
    flooder = summary["flooder"]
    if flooder["rejected"] < 1:
        failures.append("flooder saw no structured rejection "
                        "(is --max-pending low enough?)")
    if flooder["errors"]:
        failures.append(f"flooder hit {flooder['errors']} hard errors "
                        "(rejections must be structured, not dead sockets)")
    for profile in profiles:
        if profile.kind != "steady":
            continue
        client = summary[profile.name]
        if client["served"] != profile.requests:
            failures.append(
                f"{profile.name} starved: served {client['served']} of "
                f"{profile.requests} (rejected={client['rejected']}, "
                f"errors={client['errors']})")
        if client["p95_latency_seconds"] > args.max_p95:
            failures.append(
                f"{profile.name} p95 {client['p95_latency_seconds']:.2f}s "
                f"exceeds the {args.max_p95:.2f}s bound")
    if failures:
        for failure in failures:
            print(f"qos-smoke FAILED: {failure}", file=sys.stderr)
        return 1
    print("qos-smoke OK", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
