"""Tests for the persistent synthesis cache: cross-process round trips,
schema-version fallback, corruption quarantine, and the tiered layering."""

import os
import subprocess
import sys
import time
import warnings
from pathlib import Path

import pytest

from repro.engine.cache import SynthesisCache
from repro.engine.diskcache import (
    SCHEMA_VERSION,
    DiskSynthesisCache,
    TieredSynthesisCache,
    canonical_key,
)
from repro.engine.session import MappingSession

from _fixtures import AND4, MUL8

KEY = SynthesisCache.key("fingerprint", "sofa", "bitwise", 60.0, 1, True)


def _fresh_process_map(cache_dir: Path, print_expr: str) -> str:
    """Map AND4 with a disk-cached session in a brand-new interpreter."""
    script = (
        "from repro.engine.session import MappingSession\n"
        f"session = MappingSession(cache_dir={str(cache_dir)!r})\n"
        f"result = session.map_verilog({AND4!r}, template='bitwise',"
        " arch='sofa', timeout_seconds=60)\n"
        f"print(({print_expr}))\n"
    )
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run([sys.executable, "-c", script], env=env,
                               capture_output=True, text=True, timeout=120)
    assert completed.returncode == 0, completed.stderr
    return completed.stdout.strip().splitlines()[-1]


class TestDiskCacheUnit:
    def test_round_trip_and_counters(self, tmp_path):
        cache = DiskSynthesisCache(tmp_path)
        assert cache.get(KEY) is None
        cache.put(KEY, {"answer": 42})
        assert cache.get(KEY) == {"answer": 42}
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1,
                                 "errors": 0, "evictions": 0}
        cache.close()

    def test_entries_survive_reopening(self, tmp_path):
        first = DiskSynthesisCache(tmp_path)
        first.put(KEY, [1, 2, 3])
        first.close()
        second = DiskSynthesisCache(tmp_path)
        assert second.get(KEY) == [1, 2, 3]
        second.close()

    def test_clear_empties_the_database(self, tmp_path):
        cache = DiskSynthesisCache(tmp_path)
        cache.put(KEY, "value")
        cache.clear()
        assert len(cache) == 0
        assert cache.get(KEY) is None
        cache.close()

    def test_canonical_key_is_stable_and_distinct(self):
        other = SynthesisCache.key("fingerprint", "sofa", "bitwise", 61.0, 1, True)
        assert canonical_key(KEY) == canonical_key(KEY)
        assert canonical_key(KEY) != canonical_key(other)

    def test_two_instances_share_one_database(self, tmp_path):
        """WAL mode: concurrent handles (as sweep workers hold) see each
        other's writes."""
        writer = DiskSynthesisCache(tmp_path)
        reader = DiskSynthesisCache(tmp_path)
        writer.put(KEY, "shared")
        assert reader.get(KEY) == "shared"
        writer.close()
        reader.close()


class TestSchemaAndCorruption:
    def test_schema_version_mismatch_falls_back_to_empty(self, tmp_path):
        cache = DiskSynthesisCache(tmp_path)
        cache.put(KEY, "old-schema-value")
        # Simulate a database written by a different code version.
        cache._connection.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION + 1),))
        cache._connection.commit()
        cache.close()

        reopened = DiskSynthesisCache(tmp_path)
        assert len(reopened) == 0
        assert reopened.get(KEY) is None
        # The new-version cache is fully usable afterwards.
        reopened.put(KEY, "new-schema-value")
        assert reopened.get(KEY) == "new-schema-value"
        reopened.close()

    def test_corrupted_database_is_quarantined_not_fatal(self, tmp_path):
        path = tmp_path / "synthesis-cache.sqlite"
        path.write_bytes(b"this is definitely not a sqlite database")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            cache = DiskSynthesisCache(tmp_path)
        assert path.with_name(path.name + ".corrupt").exists()
        cache.put(KEY, "recovered")
        assert cache.get(KEY) == "recovered"
        cache.close()

    def test_undeserializable_entry_is_dropped_as_miss(self, tmp_path):
        cache = DiskSynthesisCache(tmp_path)
        cache._connection.execute(
            "INSERT INTO entries (key, value, created_at, last_used_at) "
            "VALUES (?, ?, 0, 0)",
            (canonical_key(KEY), b"\x80garbage-pickle"))
        cache._connection.commit()
        assert cache.get(KEY) is None
        assert len(cache) == 0  # the bad row was deleted
        assert cache.stats()["errors"] == 1
        cache.close()


class TestTieredCache:
    def test_write_through_and_promotion(self, tmp_path):
        disk = DiskSynthesisCache(tmp_path)
        tier = TieredSynthesisCache(SynthesisCache(), disk)
        tier.put(KEY, "value")
        assert tier.memory.get(KEY) == "value"
        assert disk.get(KEY) == "value"

        # A cold memory tier (a fresh process) falls through to disk and
        # promotes the hit.
        cold = TieredSynthesisCache(SynthesisCache(), DiskSynthesisCache(tmp_path))
        assert cold.get(KEY) == "value"
        assert cold.memory.get(KEY) == "value"
        stats = cold.stats()
        assert stats["disk_hits"] == 1 and stats["hits"] >= 1

    def test_combined_miss_counts_once(self, tmp_path):
        tier = TieredSynthesisCache(SynthesisCache(), DiskSynthesisCache(tmp_path))
        assert tier.get(KEY) is None
        assert tier.stats()["misses"] == 1

    def test_requires_a_disk_tier(self):
        with pytest.raises(ValueError):
            TieredSynthesisCache(SynthesisCache(), None)


class TestSessionIntegration:
    def test_fingerprint_is_process_independent(self):
        """Regression: commutative-operand canonicalization used to sort by
        the PYTHONHASHSEED-randomized ``hash()``, so the "canonical" design
        fingerprint differed between interpreters — silently defeating any
        cross-process cache."""
        script = (
            "from repro.engine.cache import program_fingerprint\n"
            "from repro.hdl.behavioral import verilog_to_behavioral\n"
            f"print(program_fingerprint(verilog_to_behavioral({AND4!r}).program))\n"
        )
        src = str(Path(__file__).resolve().parents[1] / "src")
        fingerprints = set()
        for seed in ("0", "1", "2"):
            env = dict(os.environ)
            env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
            env["PYTHONHASHSEED"] = seed
            completed = subprocess.run([sys.executable, "-c", script], env=env,
                                       capture_output=True, text=True, timeout=120)
            assert completed.returncode == 0, completed.stderr
            fingerprints.add(completed.stdout.strip())
        assert len(fingerprints) == 1

    def test_round_trip_across_two_fresh_processes(self, tmp_path):
        """The headline property: a second run in a brand-new interpreter
        is served from the on-disk cache."""
        cold = _fresh_process_map(tmp_path, "result.status, result.cache_hit")
        assert cold == "('success', False)"
        warm = _fresh_process_map(
            tmp_path,
            "result.status, result.cache_hit, result.verilog is not None")
        assert warm == "('success', True, True)"

    def test_explicit_cache_plus_cache_dir_is_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            MappingSession(cache=SynthesisCache(), cache_dir=tmp_path)

    def test_session_cache_dir_builds_tiered_cache(self, tmp_path):
        session = MappingSession(cache_dir=tmp_path)
        assert isinstance(session.cache, TieredSynthesisCache)
        cold = session.map_verilog(AND4, template="bitwise", arch="sofa",
                                   timeout_seconds=60)
        assert not cold.cache_hit

        # A second session over the same directory (same process, fresh
        # memory tier) hits the disk tier.
        other = MappingSession(cache_dir=tmp_path)
        warm = other.map_verilog(AND4, template="bitwise", arch="sofa",
                                 timeout_seconds=60)
        assert warm.cache_hit
        assert warm.status == cold.status
        assert warm.verilog == cold.verilog
        assert warm.hole_values == cold.hole_values
        assert other.cache_stats()["disk_hits"] == 1

    def test_timeouts_are_never_persisted(self, tmp_path):
        session = MappingSession(cache_dir=tmp_path)
        first = session.map_verilog(MUL8, template="dsp", arch="intel-cyclone10lp",
                                    timeout_seconds=0.0, validate=False)
        assert first.status == "timeout"
        assert len(session.cache) == 0

        fresh = MappingSession(cache_dir=tmp_path)
        second = fresh.map_verilog(MUL8, template="dsp", arch="intel-cyclone10lp",
                                   timeout_seconds=0.0, validate=False)
        assert second.status == "timeout"
        assert not second.cache_hit

    def test_disk_hits_are_isolated_from_caller_mutation(self, tmp_path):
        session = MappingSession(cache_dir=tmp_path)
        cold = session.map_verilog(AND4, template="bitwise", arch="sofa",
                                   timeout_seconds=60)
        cold.hole_values["tampered"] = 1
        warm = MappingSession(cache_dir=tmp_path).map_verilog(
            AND4, template="bitwise", arch="sofa", timeout_seconds=60)
        assert warm.cache_hit
        assert "tampered" not in warm.hole_values


class TestLruEviction:
    def test_put_evicts_least_recently_used_beyond_cap(self, tmp_path):
        cache = DiskSynthesisCache(tmp_path, max_entries=3)
        for index in range(3):
            cache.put(("key", index), f"value-{index}")
        # Touch key 0 so key 1 becomes the least recently used.
        assert cache.get(("key", 0)) == "value-0"
        cache.put(("key", 3), "value-3")
        assert len(cache) == 3
        assert cache.get(("key", 1)) is None  # evicted
        assert cache.get(("key", 0)) == "value-0"
        assert cache.get(("key", 3)) == "value-3"
        assert cache.stats()["evictions"] == 1
        cache.close()

    def test_prune_by_entry_count(self, tmp_path):
        cache = DiskSynthesisCache(tmp_path)
        for index in range(6):
            cache.put(("key", index), index)
        cache.get(("key", 0))  # most recently used
        removed = cache.prune(max_entries=2)
        assert removed == 4
        assert len(cache) == 2
        assert cache.get(("key", 0)) == 0  # survived (recently used)
        cache.close()

    def test_prune_by_age(self, tmp_path):
        cache = DiskSynthesisCache(tmp_path)
        cache.put(("old",), "old")
        cache._connection.execute(
            "UPDATE entries SET last_used_at = 0")  # pretend it is ancient
        cache._connection.commit()
        cache.put(("new",), "new")
        removed = cache.prune(max_age_seconds=3600.0)
        assert removed == 1
        assert cache.get(("new",)) == "new"
        assert cache.get(("old",)) is None
        cache.close()

    def test_session_cache_max_entries_plumbs_through(self, tmp_path):
        session = MappingSession(cache_dir=tmp_path, cache_max_entries=5)
        assert session.cache.disk.max_entries == 5
        session.close()

    def test_tiered_prune_forwards_to_disk(self, tmp_path):
        disk = DiskSynthesisCache(tmp_path)
        tiered = TieredSynthesisCache(disk=disk)
        for index in range(4):
            tiered.put(("key", index), index)
        assert tiered.prune(max_entries=1) == 3
        assert len(disk) == 1
        tiered.close()


class _FakeClock:
    """A settable stand-in for ``time.time`` (simulates clock steps)."""

    def __init__(self, now: float) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestMonotonicRecency:
    """Recency stamps are clamped strictly increasing per process, so a
    backwards wall-clock step (NTP correction, VM migration) cannot make
    freshly-touched entries look like the coldest ones."""

    def test_backwards_clock_step_does_not_evict_hot_entries(
            self, tmp_path, monkeypatch):
        clock = _FakeClock(900.0)
        monkeypatch.setattr(time, "time", clock)
        cache = DiskSynthesisCache(tmp_path, max_entries=2)
        cache.put(("a",), "a")
        clock.now = 1000.0
        cache.put(("b",), "b")
        clock.now = 100.0  # the clock steps backwards
        assert cache.get(("a",)) == "a"  # touched after the step: hottest
        cache.put(("c",), "c")  # over the cap: one entry must go
        # The clamp keeps A's recency above B's pre-step stamp, so the
        # stale B is evicted — an unclamped time.time() would stamp the
        # just-touched A at 100 and evict it first.
        assert cache.get(("a",)) == "a"
        assert cache.get(("c",)) == "c"
        assert cache.get(("b",)) is None
        cache.close()

    def test_prune_by_age_survives_backwards_clock_step(
            self, tmp_path, monkeypatch):
        clock = _FakeClock(900.0)
        monkeypatch.setattr(time, "time", clock)
        cache = DiskSynthesisCache(tmp_path)
        cache.put(("old",), "old")
        clock.now = 1000.0
        cache.put(("new",), "new")
        clock.now = 100.0  # the clock steps backwards
        # The clamped "now" stays at ~1000, so exactly the entry unused
        # for longer than 50s ages out.  An unclamped prune would compute
        # a cutoff of 50 and remove nothing.
        removed = cache.prune(max_age_seconds=50.0)
        assert removed == 1
        assert cache.get(("new",)) == "new"
        assert cache.get(("old",)) is None
        cache.close()


class TestExportImport:
    def test_export_import_round_trip_local_wins(self, tmp_path):
        source = DiskSynthesisCache(tmp_path / "src")
        for index in range(3):
            source.put(("key", index), f"value-{index}")
        rows = source.export_entries()
        assert len(rows) == 3
        assert [row[2] for row in rows] == sorted(row[2] for row in rows)

        target = DiskSynthesisCache(tmp_path / "dst")
        target.put(("key", 0), "local-wins")
        inserted = target.import_entries(
            [(key, blob) for key, blob, _ in rows])
        assert inserted == 2  # ("key", 0) collided: the local copy stays
        assert target.get(("key", 0)) == "local-wins"
        assert target.get(("key", 1)) == "value-1"
        assert target.get(("key", 2)) == "value-2"
        source.close()
        target.close()

    def test_export_since_watermark_is_incremental(self, tmp_path):
        cache = DiskSynthesisCache(tmp_path)
        cache.put(("early",), 1)
        watermark = cache.export_entries()[-1][2]
        cache.put(("late",), 2)
        rows = cache.export_entries(since=watermark)
        assert [row[0] for row in rows] == [canonical_key(("late",))]
        cache.close()

    def test_import_respects_max_entries(self, tmp_path):
        source = DiskSynthesisCache(tmp_path / "src")
        for index in range(5):
            source.put(("key", index), index)
        rows = source.export_entries()
        target = DiskSynthesisCache(tmp_path / "dst", max_entries=3)
        target.import_entries([(key, blob) for key, blob, _ in rows])
        assert len(target) == 3
        source.close()
        target.close()


class TestCacheCli:
    def _populate(self, tmp_path):
        cache = DiskSynthesisCache(tmp_path)
        for index in range(4):
            cache.put(("key", index), index)
        cache.close()

    def test_stats_prune_clear(self, tmp_path, capsys):
        from repro.cli import main

        self._populate(tmp_path)
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "entries: 4" in capsys.readouterr().out
        assert main(["cache", "prune", "--cache-dir", str(tmp_path),
                     "--max-entries", "1"]) == 0
        assert "pruned 3 entries" in capsys.readouterr().out
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "cleared 1 entries" in capsys.readouterr().out

    def test_missing_database_is_an_error(self, tmp_path):
        from repro.cli import main

        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 1

    def test_stats_refuses_to_migrate_an_old_schema(self, tmp_path):
        """'cache stats' must never trigger the (entry-dropping) schema
        migration; only an explicit clear may reset an old database."""
        from repro.cli import main

        cache = DiskSynthesisCache(tmp_path)
        cache.put(KEY, "payload")
        cache._connection.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION - 1),))
        cache._connection.commit()
        cache.close()

        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 1
        # The refusal must have left the database untouched.
        from repro.engine.diskcache import peek_schema_version
        assert peek_schema_version(tmp_path) == SCHEMA_VERSION - 1
        # clear is the sanctioned way out.
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert peek_schema_version(tmp_path) == SCHEMA_VERSION


class TestLifetimeCounters:
    """Per-run hit/miss counts persist in the meta table, so `lakeroad
    cache stats` can report hit rates over the database's whole life."""

    def test_counters_accumulate_across_runs(self, tmp_path):
        first = DiskSynthesisCache(tmp_path)
        first.get(KEY)                  # miss
        first.put(KEY, "payload")
        first.get(KEY)                  # hit
        first.close()

        second = DiskSynthesisCache(tmp_path)
        second.get(KEY)                 # hit
        second.get(("other",))          # miss
        lifetime = second.lifetime_stats()
        # Not-yet-flushed counts from the live instance are included.
        assert lifetime == {"lifetime_hits": 2, "lifetime_misses": 2}
        second.close()

        third = DiskSynthesisCache(tmp_path)
        assert third.lifetime_stats() == {"lifetime_hits": 2,
                                          "lifetime_misses": 2}
        third.close()

    def test_clear_resets_lifetime_counters(self, tmp_path):
        cache = DiskSynthesisCache(tmp_path)
        cache.get(KEY)
        cache.put(KEY, "payload")
        cache.get(KEY)
        cache.clear()
        assert cache.lifetime_stats() == {"lifetime_hits": 0,
                                          "lifetime_misses": 0}
        cache.close()

    def test_schema_migration_resets_lifetime_counters(self, tmp_path):
        cache = DiskSynthesisCache(tmp_path)
        cache.put(KEY, "payload")
        cache.get(KEY)
        cache._connection.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION - 1),))
        cache._connection.commit()
        cache.close()
        reopened = DiskSynthesisCache(tmp_path)
        assert reopened.lifetime_stats() == {"lifetime_hits": 0,
                                             "lifetime_misses": 0}
        reopened.close()

    def test_tiered_cache_exposes_disk_lifetime(self, tmp_path):
        tiered = TieredSynthesisCache(SynthesisCache(),
                                      DiskSynthesisCache(tmp_path))
        tiered.get(KEY)                 # miss in both tiers
        tiered.put(KEY, "payload")
        tiered.get(KEY)                 # memory hit: not a disk statistic
        lifetime = tiered.lifetime_stats()
        assert lifetime["lifetime_misses"] == 1
        assert lifetime["lifetime_hits"] == 0
        tiered.close()

    def test_cli_stats_reports_lifetime_hit_rate(self, tmp_path, capsys):
        from repro.cli import main

        cache = DiskSynthesisCache(tmp_path)
        cache.get(KEY)
        cache.put(KEY, "payload")
        cache.get(KEY)
        cache.get(KEY)
        cache.close()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "lifetime: 2 hits, 1 misses (67% hit rate)" in out
