"""Shared fixtures for the test suite.

Hoists the loaders, Verilog sources and workload samplers that used to be
copy-pasted across ``test_engine.py``, ``test_incremental.py``,
``test_parallel.py`` and ``test_diskcache.py``:

* the tiny behavioral Verilog designs (:data:`AND4`, :data:`ADD4`,
  :data:`MUL8`) every session-level test maps;
* the vendor primitive library and architecture-description loaders
  (session-scoped — both are immutable after construction);
* the stratified small-workload sampler (``fast_benchmarks``);
* a per-test persistent-cache directory (``cache_dir``).

The constants themselves live in ``_fixtures.py`` (importable as ``from
_fixtures import AND4`` — ``conftest`` is not an importable name from the
repo root, where ``benchmarks/conftest.py`` shadows it).
"""

import pytest

from repro.arch import load_architecture
from repro.vendor.library import PrimitiveLibrary

from _fixtures import ADD4, AND4, MUL8, small_workloads


@pytest.fixture
def and4_verilog() -> str:
    return AND4


@pytest.fixture
def add4_verilog() -> str:
    return ADD4


@pytest.fixture
def mul8_verilog() -> str:
    return MUL8


@pytest.fixture(scope="session")
def primitive_library() -> PrimitiveLibrary:
    """One shared vendor library (model parsing is pure and read-only)."""
    return PrimitiveLibrary()


@pytest.fixture(scope="session")
def arch_loader():
    """Memoizing architecture-description loader (YAML parsed once each)."""
    cache = {}

    def load(name: str):
        if name not in cache:
            cache[name] = load_architecture(name)
        return cache[name]

    return load


@pytest.fixture
def fast_benchmarks():
    """Factory fixture over :func:`small_workloads`."""
    return small_workloads


@pytest.fixture
def cache_dir(tmp_path):
    """A fresh directory for a persistent synthesis cache."""
    return tmp_path / "synthesis-cache"
