"""Tests for the Verilog frontend: lexer, parser, elaboration, extraction,
btor2 emission and the cycle-accurate simulator."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bv.eval import evaluate
from repro.core.interp import interpret
from repro.core.sublang import is_behavioral
from repro.hdl import Simulator, extract_semantics, parse_verilog, verilog_to_behavioral
from repro.hdl.btor import to_btor2_text
from repro.hdl.elaborate import ElaborationError, elaborate
from repro.hdl.lexer import LexError, parse_sized_number, tokenize
from repro.hdl.parser import ParseError, parse_module

ADD_MUL_AND = """
// computes (a+b)*c&d in two clock cycles.
module add_mul_and(input clk, input [15:0] a, b, c, d,
                   output reg [15:0] out);
  reg [15:0] r;
  always @(posedge clk) begin
    r <= (a+b)*c&d;
    out <= r;
  end
endmodule
"""


class TestLexer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("module foo; endmodule")
        kinds = [(t.kind, t.text) for t in tokens]
        assert ("keyword", "module") in kinds
        assert ("id", "foo") in kinds

    def test_comments_are_skipped(self):
        tokens = tokenize("// line comment\n/* block\ncomment */ wire")
        assert [t.text for t in tokens] == ["wire"]

    def test_attributes_are_skipped(self):
        tokens = tokenize("(* use_dsp = \"yes\" *) module m; endmodule")
        assert tokens[0].text == "module"

    def test_sized_literals(self):
        assert parse_sized_number("16'h00ff") == (0x00ff, 16)
        assert parse_sized_number("4'b1010") == (0b1010, 4)
        assert parse_sized_number("32'd7") == (7, 32)

    def test_x_and_z_become_zero(self):
        value, width = parse_sized_number("4'b1x0z")
        assert (value, width) == (0b1000, 4)

    def test_unknown_character_raises(self):
        with pytest.raises(LexError):
            tokenize("module `bad")


class TestParser:
    def test_add_mul_and_structure(self):
        module = parse_module(ADD_MUL_AND)
        assert module.name == "add_mul_and"
        assert [p.name for p in module.input_ports()] == ["clk", "a", "b", "c", "d"]
        assert module.port("a").width == 16
        assert module.port("out").direction == "output"
        assert module.port("out").is_reg
        assert len(module.always_blocks) == 1

    def test_signed_ports(self):
        module = parse_module(
            "module m(input signed [7:0] a, output signed [7:0] y); assign y = a; endmodule")
        assert module.port("a").is_signed

    def test_parameters(self):
        module = parse_module(
            "module m #(parameter W = 8) (input [W-1:0] a, output [W-1:0] y);"
            " assign y = a; endmodule")
        assert module.parameters[0].name == "W"
        assert module.port("a").width == 8

    def test_localparam_in_body(self):
        module = parse_module(
            "module m(input [3:0] a, output [3:0] y); localparam K = 3;"
            " assign y = a + K; endmodule")
        assert any(p.name == "K" and p.default == 3 for p in module.parameters)

    def test_if_else_statement(self):
        module = parse_module("""
            module m(input clk, input [3:0] a, output reg [3:0] y);
              always @(posedge clk) begin
                if (a > 4'd3) y <= a; else y <= 4'd0;
              end
            endmodule""")
        assert len(module.always_blocks[0].body) == 1

    def test_concat_and_replication(self):
        module = parse_module(
            "module m(input [3:0] a, output [7:0] y); assign y = {2{a[1:0]}, a}; endmodule"
            .replace("{2{a[1:0]}, a}", "{ {2{a[1:0]}}, a }"))
        assert module.assigns

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            parse_module("module m(input a, output y) assign y = a; endmodule")

    def test_multiple_modules(self):
        parsed = parse_verilog("module a(input x, output y); assign y = x; endmodule\n"
                               "module b(input x, output y); assign y = x; endmodule")
        assert [m.name for m in parsed.modules] == ["a", "b"]
        with pytest.raises(ParseError):
            parse_module("module a(input x, output y); assign y = x; endmodule\n"
                         "module b(input x, output y); assign y = x; endmodule")

    def test_source_line_count_excludes_comments(self):
        module = parse_module(ADD_MUL_AND)
        assert 0 < module.source_lines < len(ADD_MUL_AND.splitlines())


class TestElaboration:
    def test_combinational_assign(self):
        module = parse_module(
            "module m(input [7:0] a, b, output [7:0] y); assign y = a ^ b; endmodule")
        system = elaborate(module)
        assert system.is_combinational()
        assert evaluate(system.output("y"), {"a": 0xAA, "b": 0x0F}) == 0xA5

    def test_narrow_context_still_evaluates_wide(self):
        module = parse_module(
            "module m(input [7:0] init, input [2:0] sel, output o);"
            " assign o = (init >> sel) & 1'b1; endmodule")
        system = elaborate(module)
        assert evaluate(system.output("o"), {"init": 0b10000000, "sel": 7}) == 1
        assert evaluate(system.output("o"), {"init": 0b10000000, "sel": 6}) == 0

    def test_registers_and_next_functions(self):
        module = parse_module(ADD_MUL_AND)
        system = elaborate(module)
        assert set(system.states) == {"r", "out"}
        assert set(system.inputs) == {"clk", "a", "b", "c", "d"}

    def test_ternary_and_comparison(self):
        module = parse_module(
            "module m(input [3:0] a, b, output [3:0] y); assign y = (a < b) ? a : b; endmodule")
        system = elaborate(module)
        assert evaluate(system.output("y"), {"a": 2, "b": 9}) == 2
        assert evaluate(system.output("y"), {"a": 9, "b": 2}) == 2

    def test_signed_comparison_uses_signed_semantics(self):
        module = parse_module(
            "module m(input signed [3:0] a, b, output y); assign y = a < b; endmodule")
        system = elaborate(module)
        # -1 < 1 in the signed interpretation (0xF is -1).
        assert evaluate(system.output("y"), {"a": 0xF, "b": 1}) == 1

    def test_undriven_output_raises(self):
        module = parse_module("module m(input a, output y); wire z; assign z = a; endmodule")
        with pytest.raises(ElaborationError):
            elaborate(module)

    def test_double_driven_wire_raises(self):
        module = parse_module(
            "module m(input a, output y); assign y = a; assign y = ~a; endmodule")
        with pytest.raises(ElaborationError):
            elaborate(module)

    def test_parameter_override(self):
        module = parse_module(
            "module m #(parameter K = 1) (input [7:0] a, output [7:0] y);"
            " assign y = a + K; endmodule")
        system = elaborate(module, parameter_overrides={"K": 5})
        assert evaluate(system.output("y"), {"a": 1}) == 6


class TestExtractionAndSimulation:
    def test_behavioral_import(self):
        design = verilog_to_behavioral(ADD_MUL_AND)
        assert design.pipeline_depth == 2
        assert design.input_widths == {"a": 16, "b": 16, "c": 16, "d": 16}
        assert is_behavioral(design.program)

    def test_interpreter_matches_expression(self):
        design = verilog_to_behavioral(ADD_MUL_AND)
        env = {"a": lambda t: 3, "b": lambda t: 5, "c": lambda t: 2, "d": lambda t: 0xffff}
        assert interpret(design.program, env, 2) == (3 + 5) * 2

    def test_btor2_emission_mentions_states_and_outputs(self):
        _, system = extract_semantics(ADD_MUL_AND)
        text = to_btor2_text(system)
        assert "state" in text and "next" in text and "output" in text
        assert "sort bitvec 16" in text

    def test_simulator_matches_interpreter(self):
        design = verilog_to_behavioral(ADD_MUL_AND)
        _, system = extract_semantics(ADD_MUL_AND)
        rng = random.Random(1)
        streams = {name: [rng.getrandbits(16) for _ in range(8)] for name in "abcd"}
        simulator = Simulator(system)
        trace = simulator.run(dict(streams, clk=[0] * 8), 8, output="out")
        for t in range(8):
            assert trace[t] == interpret(design.program, streams, t)

    def test_simulator_reset(self):
        _, system = extract_semantics(ADD_MUL_AND)
        simulator = Simulator(system)
        simulator.run({"a": [1], "b": [1], "c": [1], "d": [1], "clk": [0]}, 3)
        simulator.reset()
        assert simulator.cycle == 0
        assert all(value == 0 for value in simulator.state.values())

    @given(st.integers(min_value=0, max_value=0xffff), st.integers(min_value=0, max_value=0xffff),
           st.integers(min_value=0, max_value=0xffff), st.integers(min_value=0, max_value=0xffff))
    @settings(max_examples=30, deadline=None)
    def test_extraction_is_consistent_with_pipeline_semantics(self, a, b, c, d):
        design = verilog_to_behavioral(ADD_MUL_AND)
        streams = {"a": [a] * 4, "b": [b] * 4, "c": [c] * 4, "d": [d] * 4}
        expected = ((a + b) * c) & d & 0xffff
        assert interpret(design.program, streams, 2) == expected
