"""Tests for sketch generation, f_lr / f*_lr, lowering to Verilog, and the
end-to-end Lakeroad flow on the fast architectures."""

import pytest

from repro.arch import load_architecture
from repro.core.interp import interpret
from repro.core.lower import ResourceCount, lower_to_verilog
from repro.core.sketch_gen import DesignInterface, SketchGenerationError, generate_sketch
from repro.core.sublang import is_sketch
from repro.core.synthesis import f_lr, f_lr_star
from repro.core.templates import available_templates, template_by_name
from repro.core.wellformed import check_well_formed
from repro.hdl.behavioral import verilog_to_behavioral
from repro.lakeroad import map_verilog
from repro.vendor.library import PrimitiveLibrary

LIBRARY = PrimitiveLibrary()


def _design_interface(inputs, width, out_width=None):
    return DesignInterface(input_widths={name: width for name in inputs},
                           output_width=out_width or width)


class TestTemplates:
    def test_five_templates_shipped(self):
        assert available_templates() == [
            "bitwise", "bitwise-with-carry", "comparison", "dsp", "multiplication"]

    def test_unknown_template(self):
        with pytest.raises(KeyError):
            template_by_name("systolic-array")

    def test_template_descriptions(self):
        for name in available_templates():
            assert template_by_name(name).describe()


class TestSketchGeneration:
    @pytest.mark.parametrize("arch_name", ["xilinx-ultrascale-plus", "lattice-ecp5",
                                            "intel-cyclone10lp"])
    def test_dsp_sketch_per_architecture(self, arch_name):
        arch = load_architecture(arch_name)
        design = _design_interface("ab", 8)
        sketch = generate_sketch("dsp", arch, design, LIBRARY)
        assert is_sketch(sketch.program)
        check_well_formed(sketch.program)
        assert sketch.hole_count() > 0
        assert sketch.program.free_vars() == {"a", "b"}

    def test_dsp_sketch_hole_space_includes_configuration(self):
        arch = load_architecture("xilinx-ultrascale-plus")
        sketch = generate_sketch("dsp", arch, _design_interface("abcd", 8), LIBRARY)
        hole_names = " ".join(sketch.hole_names)
        assert "OPMODE" in hole_names and "ALUMODE" in hole_names

    def test_dsp_sketch_unavailable_on_sofa(self):
        arch = load_architecture("sofa")
        with pytest.raises(SketchGenerationError):
            generate_sketch("dsp", arch, _design_interface("ab", 8), LIBRARY)

    @pytest.mark.parametrize("arch_name", ["xilinx-ultrascale-plus", "lattice-ecp5", "sofa"])
    def test_bitwise_sketch_per_architecture(self, arch_name):
        arch = load_architecture(arch_name)
        sketch = generate_sketch("bitwise", arch, _design_interface("ab", 4), LIBRARY)
        assert is_sketch(sketch.program)
        # One LUT hole per output bit.
        assert sketch.hole_count() == 4

    def test_bitwise_carry_sketch_on_xilinx(self):
        arch = load_architecture("xilinx-ultrascale-plus")
        sketch = generate_sketch("bitwise-with-carry", arch, _design_interface("ab", 8), LIBRARY)
        assert is_sketch(sketch.program)

    def test_bitwise_carry_requires_carry_interface(self):
        arch = load_architecture("sofa")
        with pytest.raises(SketchGenerationError):
            generate_sketch("bitwise-with-carry", arch, _design_interface("ab", 4), LIBRARY)

    def test_multiplication_sketch_width_limit(self):
        arch = load_architecture("sofa")
        with pytest.raises(SketchGenerationError):
            generate_sketch("multiplication", arch, _design_interface("ab", 8), LIBRARY)
        sketch = generate_sketch("multiplication", arch, _design_interface("ab", 2), LIBRARY)
        assert is_sketch(sketch.program)

    def test_comparison_sketch(self):
        arch = load_architecture("sofa")
        sketch = generate_sketch("comparison", arch,
                                 _design_interface("ab", 4, out_width=1), LIBRARY)
        assert is_sketch(sketch.program)


class TestSynthesisWithSketches:
    def _synthesize_verilog(self, source, template, arch_name, **kwargs):
        design = verilog_to_behavioral(source)
        arch = load_architecture(arch_name)
        interface = DesignInterface(dict(design.input_widths), design.output_width)
        sketch = generate_sketch(template, arch, interface, LIBRARY)
        return design, f_lr_star(sketch, design.program, at_time=design.pipeline_depth,
                                 cycles=kwargs.get("cycles", 1),
                                 timeout_seconds=kwargs.get("timeout", 60))

    def test_bitwise_and_on_sofa(self):
        source = "module f(input [3:0] a, b, output [3:0] out); assign out = a & b; endmodule"
        design, outcome = self._synthesize_verilog(source, "bitwise", "sofa")
        assert outcome.succeeded
        # Validate the synthesized LUT configuration by simulation.
        for a in (0b0011, 0b1111, 0b1010):
            for b in (0b0101, 0b0110):
                assert interpret(outcome.program, {"a": [a], "b": [b]}, 0) == a & b

    def test_bitwise_xor_on_xilinx_luts(self):
        source = "module f(input [2:0] a, b, output [2:0] out); assign out = a ^ b; endmodule"
        design, outcome = self._synthesize_verilog(source, "bitwise", "xilinx-ultrascale-plus")
        assert outcome.succeeded
        assert interpret(outcome.program, {"a": [0b101], "b": [0b011]}, 0) == 0b110

    def test_bitwise_cannot_express_addition(self):
        source = "module f(input [3:0] a, b, output [3:0] out); assign out = a + b; endmodule"
        design, outcome = self._synthesize_verilog(source, "bitwise", "sofa")
        assert outcome.status == "unsat"

    def test_multiplication_template_on_sofa(self):
        source = "module f(input [1:0] a, b, output [1:0] out); assign out = a * b; endmodule"
        design, outcome = self._synthesize_verilog(source, "multiplication", "sofa")
        assert outcome.succeeded
        for a in range(4):
            for b in range(4):
                assert interpret(outcome.program, {"a": [a], "b": [b]}, 0) == (a * b) & 0b11

    def test_dsp_template_on_intel_multiply(self):
        source = ("module f(input clk, input [7:0] a, b, output reg [7:0] out);"
                  " always @(posedge clk) out <= a * b; endmodule")
        design, outcome = self._synthesize_verilog(source, "dsp", "intel-cyclone10lp")
        assert outcome.succeeded
        streams = {"a": [3, 5, 7], "b": [9, 11, 13]}
        for t in (1, 2):
            assert interpret(outcome.program, streams, t) == \
                interpret(design.program, streams, t)

    def test_dsp_template_on_lattice_mul_add(self):
        source = ("module f(input clk, input [7:0] a, b, c, output [7:0] out);"
                  " assign out = (a * b) + c; endmodule")
        design, outcome = self._synthesize_verilog(source, "dsp", "lattice-ecp5")
        assert outcome.succeeded

    def test_dsp_template_intel_rejects_three_input_design(self):
        """(a*b)+c cannot fit the two-input Cyclone 10 LP multiplier."""
        source = ("module f(input clk, input [7:0] a, b, c, output [7:0] out);"
                  " assign out = (a * b) + c; endmodule")
        design, outcome = self._synthesize_verilog(source, "dsp", "intel-cyclone10lp",
                                                   timeout=30)
        assert outcome.status in ("unsat", "unknown")


class TestLoweringToVerilog:
    def _lowered_intel_multiply(self):
        source = ("module f(input clk, input [7:0] a, b, output reg [7:0] out);"
                  " always @(posedge clk) out <= a * b; endmodule")
        result = map_verilog(source, template="dsp", arch="intel-cyclone10lp",
                             timeout_seconds=30, validate=False)
        assert result.succeeded
        return result

    def test_single_dsp_resources(self):
        result = self._lowered_intel_multiply()
        assert result.resources.dsps == 1
        assert result.resources.logic_elements == 0

    def test_verilog_contains_primitive_instance(self):
        result = self._lowered_intel_multiply()
        assert "cyclone10lp_mac_mult" in result.verilog
        assert "module f_impl" in result.verilog
        assert "input clk" in result.verilog

    def test_parameters_emitted_as_literals(self):
        result = self._lowered_intel_multiply()
        assert ".REG_OUTPUT(1'h" in result.verilog

    def test_resource_count_arithmetic(self):
        total = ResourceCount(dsps=1, luts=2) + ResourceCount(luts=3, registers=4)
        assert total.dsps == 1 and total.luts == 5 and total.registers == 4
        assert total.logic_elements == 5


class TestLakeroadEndToEnd:
    def test_lattice_multiply_maps_and_validates(self):
        source = ("module mul8(input clk, input [7:0] a, b, output [7:0] out);"
                  " assign out = a * b; endmodule")
        result = map_verilog(source, template="dsp", arch="lattice-ecp5",
                             timeout_seconds=40)
        assert result.succeeded
        assert result.validated is True
        assert result.resources.dsps == 1

    def test_unsat_is_reported_for_unmappable_design(self):
        source = ("module x3(input clk, input [7:0] a, b, output [7:0] out);"
                  " assign out = (a * b) ^ (a + b); endmodule")
        result = map_verilog(source, template="dsp", arch="intel-cyclone10lp",
                             timeout_seconds=30, validate=False)
        assert result.status in ("unsat", "timeout")

    @pytest.mark.slow
    def test_xilinx_add_mul_and_maps_to_single_dsp(self):
        source = ("module add_mul_and(input clk, input [7:0] a, b, c, d,"
                  " output reg [7:0] out);"
                  " reg [7:0] r;"
                  " always @(posedge clk) begin r <= (a+b)*c&d; out <= r; end endmodule")
        result = map_verilog(source, template="dsp", arch="xilinx-ultrascale-plus",
                             timeout_seconds=240)
        assert result.succeeded
        assert result.resources.dsps == 1
        assert result.resources.luts == 0
        assert result.validated is True
