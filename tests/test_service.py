"""Tests for the service layer: the warm worker pool, the deduplicating
front door, the socket protocol, graceful shutdown, and the bench diff."""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.engine.diskcache import (
    DB_NAME,
    DiskSynthesisCache,
    peek_entry_count,
    peek_schema_version,
)
from repro.engine.parallel import SessionSpec, SweepInterrupted, run_sweep
from repro.engine.service import (
    MapRequest,
    ServerThread,
    ServiceClient,
    SolverService,
)
from repro.harness.bench import DEFAULT_DIFF_THRESHOLDS, diff_snapshots
from repro.harness.runner import ExperimentConfig, MappingRecord

from _fixtures import ADD4, AND4, MUL8, small_workloads as _fast_benchmarks

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="requires the fork start method")

pytestmark = needs_fork


def _comparable(record: MappingRecord) -> dict:
    """Record content minus the wall-clock-dependent fields."""
    data = record.to_dict()
    data.pop("time_seconds")
    data.pop("solver_solve_seconds")
    data.pop("cache_hit")
    return data


def _mul_request(**overrides) -> MapRequest:
    fields = dict(verilog=MUL8, arch="intel-cyclone10lp", benchmark="mul8")
    fields.update(overrides)
    return MapRequest(**fields)


# --------------------------------------------------------------------------- #
# Front-door semantics
# --------------------------------------------------------------------------- #
class TestFrontDoor:
    def test_concurrent_identical_requests_coalesce_to_one_solve(self):
        with SolverService(SessionSpec(), workers=2) as service:
            futures = [service.submit(_mul_request()) for _ in range(8)]
            records = [future.result(timeout=120) for future in futures]
            stats = service.stats()
        assert stats["dispatched"] == 1
        assert stats["coalesced"] == 7
        # One solve, eight replies, identical content.
        assert len({json.dumps(_comparable(r), sort_keys=True)
                    for r in records}) == 1
        assert sum(1 for r in records if not r.cache_hit) == 1

    def test_coalesced_sign_twins_get_their_own_metadata(self):
        """Two requests may share a solve (canonical fingerprints ignore
        signedness) yet must come back under their own labels."""
        with SolverService(SessionSpec(), workers=1) as service:
            plain = service.submit(_mul_request(benchmark="mul", signed=False))
            twin = service.submit(_mul_request(benchmark="mul_signed",
                                               signed=True))
            first, second = plain.result(120), twin.result(120)
        assert first.benchmark == "mul" and not first.signed
        assert second.benchmark == "mul_signed" and second.signed
        assert first.outcome == second.outcome

    def test_sequential_repeat_hits_the_front_cache(self):
        with SolverService(SessionSpec(), workers=2) as service:
            cold = service.submit(_mul_request()).result(timeout=120)
            warm = service.submit(_mul_request()).result(timeout=120)
            stats = service.stats()
        assert not cold.cache_hit and warm.cache_hit
        assert stats["dispatched"] == 1
        assert stats["front_memory_hits"] == 1
        assert _comparable(cold) == _comparable(warm)

    def test_front_door_reads_the_disk_tier_across_services(self, tmp_path):
        spec = SessionSpec(cache_dir=str(tmp_path))
        with SolverService(spec, workers=1) as service:
            cold = service.submit(_mul_request()).result(timeout=120)
        with SolverService(spec, workers=1) as service:
            warm = service.submit(_mul_request()).result(timeout=120)
            stats = service.stats()
        assert stats["front_disk_hits"] == 1
        assert stats["dispatched"] == 0
        assert _comparable(cold) == _comparable(warm)

    def test_use_cache_false_disables_caching_but_not_dedup(self):
        with SolverService(SessionSpec(), workers=1) as service:
            first = service.submit(_mul_request(use_cache=False))
            second = service.submit(_mul_request(use_cache=False))
            first.result(120), second.result(120)
            third = service.submit(_mul_request(use_cache=False)).result(120)
            stats = service.stats()
        assert stats["coalesced"] == 1          # concurrent pair shared
        assert stats["front_memory_hits"] == 0  # nothing was cached
        assert stats["dispatched"] == 2         # the third solved again
        assert not third.cache_hit

    def test_affinity_routes_a_design_family_to_one_worker(self):
        spec = SessionSpec(enable_cache=False)  # force repeat dispatches
        with SolverService(spec, workers=2) as service:
            for _ in range(3):
                service.submit(_mul_request()).result(timeout=120)
            stats = service.stats()
            affinity = service.affinity_snapshot()
        assert len(affinity) == 1
        assert sorted(stats["worker_requests"]) == [0, 3]

    def test_distinct_designs_spread_over_least_loaded_workers(self):
        with SolverService(SessionSpec(), workers=2) as service:
            a = service.submit(MapRequest(verilog=AND4, arch="sofa",
                                          template="bitwise", benchmark="a"))
            b = service.submit(MapRequest(verilog=ADD4, arch="sofa",
                                          template="bitwise", benchmark="b"))
            a.result(120), b.result(120)
            affinity = service.affinity_snapshot()
        assert sorted(affinity.values()) == [0, 1]

    def test_unparseable_verilog_fails_the_future_only(self):
        with SolverService(SessionSpec(), workers=1) as service:
            bad = service.submit(MapRequest(verilog="not verilog at all"))
            with pytest.raises(Exception):
                bad.result(timeout=30)
            good = service.submit(_mul_request()).result(timeout=120)
            assert good.benchmark == "mul8"
            assert service.stats()["errors"] == 1

    def test_submit_after_close_is_refused(self):
        service = SolverService(SessionSpec(), workers=1)
        service.close()
        with pytest.raises(RuntimeError):
            service.submit(_mul_request())


# --------------------------------------------------------------------------- #
# Crash recovery
# --------------------------------------------------------------------------- #
class TestCrashRecovery:
    def test_killed_worker_is_restarted_and_requests_survive(self):
        benchmarks = _fast_benchmarks(4)
        config = ExperimentConfig()
        with SolverService(SessionSpec(), workers=2) as service:
            futures = [service.map_benchmark(b, config) for b in benchmarks]
            # SIGKILL both workers mid-burst (they ignore SIGTERM by
            # design); sent and queued requests must be re-dispatched.
            for handle in service._pool:
                handle.process.kill()
            records = [future.result(timeout=120) for future in futures]
            stats = service.stats()
        assert stats["worker_restarts"] >= 1
        assert [r.benchmark for r in records] == [b.name for b in benchmarks]
        serial = run_sweep(benchmarks, config, workers=1).records
        assert [_comparable(r) for r in serial] == \
            [_comparable(r) for r in records]

    def test_restart_budget_caps_a_crash_loop(self):
        with SolverService(SessionSpec(), workers=1) as service:
            service._restarts_left = 0
            with pytest.warns(RuntimeWarning, match="restart budget"):
                service._pool[0].process.kill()
                deadline = time.monotonic() + 30
                while service._failed is None and time.monotonic() < deadline:
                    time.sleep(0.05)
            assert service._failed is not None
            with pytest.raises(RuntimeError, match="service failed"):
                service.submit(_mul_request())


# --------------------------------------------------------------------------- #
# Determinism: served ≡ serial in all four incremental modes
# --------------------------------------------------------------------------- #
class TestServedEqualsSerial:
    @pytest.mark.parametrize("incremental,incremental_verify",
                             [(False, False), (True, False),
                              (False, True), (True, True)])
    def test_served_records_equal_serial_sweep(self, incremental,
                                               incremental_verify):
        benchmarks = _fast_benchmarks(4)
        config = ExperimentConfig(incremental=incremental,
                                  incremental_verify=incremental_verify)
        serial = run_sweep(benchmarks, config, workers=1).records
        spec = SessionSpec.from_config(config)
        with SolverService(spec, workers=2) as service:
            served = service.map_many(benchmarks, config)
        assert [_comparable(r) for r in serial] == \
            [_comparable(r) for r in served]
        assert [r.benchmark for r in served] == [b.name for b in benchmarks]


# --------------------------------------------------------------------------- #
# The socket layer
# --------------------------------------------------------------------------- #
class TestSocketLayer:
    def test_pipelined_requests_and_stats(self, tmp_path):
        socket_path = tmp_path / "serve.sock"
        benchmarks = _fast_benchmarks(4)
        with SolverService(SessionSpec(), workers=2) as service:
            with ServerThread(service, socket_path):
                with ServiceClient(socket_path) as client:
                    assert client.request({"op": "ping"})["pong"] is True
                    futures = [client.submit({
                        "op": "map", "verilog": b.verilog,
                        "arch": b.architecture, "benchmark": b.name})
                        for b in benchmarks * 4]
                    responses = [f.result(timeout=120) for f in futures]
                    stats = client.stats()
            assert not socket_path.exists()  # removed on graceful drain
        assert all(response["ok"] for response in responses)
        assert stats["requests"] == len(benchmarks) * 4
        # 4 unique designs, 16 requests: at least 12 served warm.
        assert stats["warm_served"] >= 12

    def test_socket_records_equal_direct_submission(self, tmp_path):
        benchmarks = _fast_benchmarks(3)
        config = ExperimentConfig()
        serial = run_sweep(benchmarks, config, workers=1).records
        socket_path = tmp_path / "serve.sock"
        with SolverService(SessionSpec(), workers=2) as service:
            with ServerThread(service, socket_path):
                with ServiceClient(socket_path) as client:
                    responses = [client.map_verilog(
                        b.verilog, arch=b.architecture, benchmark=b.name,
                        form=b.form.name, width=b.width, stages=b.stages,
                        signed=b.signed, timeout=120)
                        for b in benchmarks]
        served = [MappingRecord.from_dict(r["record"]) for r in responses]
        assert [_comparable(r) for r in serial] == \
            [_comparable(r) for r in served]

    def test_request_larger_than_64k_default_asyncio_limit(self, tmp_path):
        # Regression: the server used to leave asyncio's default 64 KiB
        # stream limit in place, so a large inlined Verilog source raised
        # LimitOverrunError and the connection just died.
        socket_path = tmp_path / "serve.sock"
        padding = "// " + "x" * (96 * 1024) + "\n"
        with SolverService(SessionSpec(), workers=1) as service:
            with ServerThread(service, socket_path):
                with ServiceClient(socket_path) as client:
                    response = client.map_verilog(
                        padding + MUL8, arch="intel-cyclone10lp",
                        benchmark="mul8-padded", timeout=120)
        assert response["ok"] is True
        assert len(json.dumps({"verilog": padding + MUL8})) > 64 * 1024

    def test_oversized_line_answered_with_error_not_dead_socket(
            self, tmp_path):
        import socket as socket_mod

        socket_path = tmp_path / "serve.sock"
        with SolverService(SessionSpec(), workers=1) as service:
            with ServerThread(service, socket_path, limit=1024):
                with socket_mod.socket(socket_mod.AF_UNIX,
                                       socket_mod.SOCK_STREAM) as sock:
                    sock.connect(str(socket_path))
                    sock.settimeout(30)
                    reader = sock.makefile("rb")
                    oversized = json.dumps(
                        {"id": 1, "op": "map", "verilog": "y" * 4096})
                    sock.sendall(oversized.encode() + b"\n")
                    error = json.loads(reader.readline())
                    assert error["ok"] is False
                    assert "limit" in error["error"]
                    # The connection survives: the next request is served.
                    sock.sendall(b'{"id": 2, "op": "ping"}\n')
                    pong = json.loads(reader.readline())
                    assert pong["ok"] is True
                    assert pong["id"] == 2

    def test_malformed_requests_are_answered_not_fatal(self, tmp_path):
        socket_path = tmp_path / "serve.sock"
        with SolverService(SessionSpec(), workers=1) as service:
            with ServerThread(service, socket_path):
                with ServiceClient(socket_path) as client:
                    unknown = client.request({"op": "selfdestruct"})
                    assert unknown["ok"] is False
                    missing = client.request({"op": "map"})
                    assert missing["ok"] is False
                    # The connection is still serviceable afterwards.
                    assert client.request({"op": "ping"})["ok"] is True


# --------------------------------------------------------------------------- #
# Graceful shutdown
# --------------------------------------------------------------------------- #
class TestGracefulShutdown:
    def test_close_flushes_cache_counters_and_leaves_no_corruption(
            self, tmp_path):
        spec = SessionSpec(cache_dir=str(tmp_path))
        with SolverService(spec, workers=2) as service:
            service.submit(_mul_request()).result(timeout=120)
        assert not list(tmp_path.glob("*.corrupt"))
        check = DiskSynthesisCache(tmp_path)
        lifetime = check.lifetime_stats()
        check.close()
        # The worker's cold solve was a disk-tier miss, flushed on close.
        assert lifetime["lifetime_misses"] >= 1

    def test_close_collects_worker_session_stats(self):
        with SolverService(SessionSpec(), workers=2) as service:
            service.submit(_mul_request()).result(timeout=120)
            service.submit(_mul_request(use_cache=None)).result(timeout=120)
        worker_stats = service.worker_cache_stats()
        assert worker_stats.get("misses", 0) >= 1

    def test_no_worker_processes_survive_close(self):
        service = SolverService(SessionSpec(), workers=2)
        processes = [handle.process for handle in service._pool]
        service.submit(_mul_request()).result(timeout=120)
        service.close()
        assert all(not process.is_alive() for process in processes)

    def test_serial_sweep_interrupt_drains_completed_records(self, monkeypatch):
        from repro.engine import parallel as parallel_mod

        benchmarks = _fast_benchmarks(3)
        calls = []
        original = parallel_mod.map_benchmark

        def interrupting(session, benchmark, config):
            if len(calls) == 1:
                raise KeyboardInterrupt
            calls.append(benchmark.name)
            return original(session, benchmark, config)

        monkeypatch.setattr(parallel_mod, "map_benchmark", interrupting)
        with pytest.raises(SweepInterrupted) as info:
            run_sweep(benchmarks, ExperimentConfig(), workers=1)
        assert len(info.value.result.records) == 1
        assert info.value.result.records[0].benchmark == benchmarks[0].name

    @pytest.mark.slow
    def test_sweep_cli_sigterm_drains_and_exits_130(self, tmp_path):
        """`lakeroad sweep` under SIGTERM: drained exit, code 130, no
        quarantined cache databases, no orphan workers."""
        cache_dir = tmp_path / "cache"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "sweep",
             "--arch", "xilinx-ultrascale-plus", "--count", "12",
             "--max-width", "16", "--workers", "2",
             "--cache-dir", str(cache_dir)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        time.sleep(3.0)
        process.send_signal(signal.SIGTERM)
        try:
            _, stderr = process.communicate(timeout=120)
        except subprocess.TimeoutExpired:
            process.kill()
            raise
        if process.returncode == 0:
            pytest.skip("sweep finished before the signal landed")
        assert process.returncode == 130, stderr
        assert "interrupted" in stderr
        assert not list(cache_dir.glob("*.corrupt"))


# --------------------------------------------------------------------------- #
# MapRequest plumbing
# --------------------------------------------------------------------------- #
class TestMapRequest:
    def test_from_benchmark_carries_config_and_metadata(self):
        benchmark = _fast_benchmarks(1)[0]
        config = ExperimentConfig(validate=True, extra_cycles=2)
        request = MapRequest.from_benchmark(benchmark, config)
        assert request.verilog == benchmark.verilog
        assert request.arch == benchmark.architecture
        assert request.timeout_seconds == \
            config.timeout_for(benchmark.architecture)
        assert request.extra_cycles == 2 and request.validate
        assert request.benchmark == benchmark.name
        assert request.form == benchmark.form.name
        assert (request.width, request.stages, request.signed) == \
            (benchmark.width, benchmark.stages, benchmark.signed)


# --------------------------------------------------------------------------- #
# Disk cache: fork guard and peek memoization
# --------------------------------------------------------------------------- #
class TestDiskCacheForkSafety:
    def test_forked_child_reopens_and_parent_survives(self, tmp_path):
        cache = DiskSynthesisCache(tmp_path)
        cache.put(("shared",), {"value": 1})

        def child_body(queue):
            # The inherited connection must be replaced, and both read and
            # write must work on the child's own handle.
            value = cache.get(("shared",))
            cache.put(("from-child",), {"value": 2})
            cache.close()
            queue.put(value)

        context = multiprocessing.get_context("fork")
        queue = context.Queue()
        child = context.Process(target=child_body, args=(queue,))
        child.start()
        child.join(30)
        assert child.exitcode == 0
        assert queue.get(timeout=10) == {"value": 1}
        # Parent's connection is untouched: reads still work, the child's
        # write is visible, nothing got quarantined.
        assert cache.get(("from-child",)) == {"value": 2}
        assert not list(tmp_path.glob("*.corrupt"))
        cache.close()

    def test_peek_helpers_reuse_a_connection_and_see_fresh_writes(
            self, tmp_path):
        cache = DiskSynthesisCache(tmp_path)
        cache.put(("a",), 1)
        assert peek_entry_count(tmp_path) == 1
        cache.put(("b",), 2)
        # The memoized read-only connection must see the new entry.
        assert peek_entry_count(tmp_path) == 2
        assert peek_schema_version(tmp_path) is not None
        cache.close()

    def test_peek_detects_a_replaced_database(self, tmp_path):
        cache = DiskSynthesisCache(tmp_path)
        cache.put(("a",), 1)
        cache.close()
        assert peek_entry_count(tmp_path) == 1
        # Replace the file wholesale (what quarantine + rebuild does).
        other_dir = tmp_path / "other"
        other = DiskSynthesisCache(other_dir)
        other.put(("x",), 1)
        other.put(("y",), 2)
        other.close()
        os.replace(other_dir / DB_NAME, tmp_path / DB_NAME)
        assert peek_entry_count(tmp_path) == 2


# --------------------------------------------------------------------------- #
# Bench snapshot diff
# --------------------------------------------------------------------------- #
class TestBenchDiff:
    def _snapshot(self, **overrides):
        base = {
            "totals": {"solved_rate": 1.0, "warm_cache_hit_rate": 1.0,
                       "cold_seconds": 10.0, "warm_seconds": 1.0},
            "probe_throughput": {"speedup": 8.0,
                                 "packed_assignments_per_second": 1e6},
            "serve": {"warm_hit_rate": 0.95, "speedup_vs_cold": 20.0,
                      "serve_warm": {"requests_per_second": 100.0,
                                     "p95_latency_seconds": 0.05}},
        }
        for path, value in overrides.items():
            node = base
            parts = path.split(".")
            for part in parts[:-1]:
                node = node[part]
            node[parts[-1]] = value
        return base

    def test_identical_snapshots_have_no_regressions(self):
        old = self._snapshot()
        results = diff_snapshots(old, self._snapshot())
        assert results and not any(entry["regressed"] for entry in results)

    def test_higher_is_better_regression_detected(self):
        results = diff_snapshots(self._snapshot(),
                                 self._snapshot(**{"serve.speedup_vs_cold": 2.0}))
        regressed = {entry["metric"] for entry in results if entry["regressed"]}
        assert "serve.speedup_vs_cold" in regressed

    def test_lower_is_better_regression_detected(self):
        results = diff_snapshots(
            self._snapshot(),
            self._snapshot(**{"serve.serve_warm.p95_latency_seconds": 1.0}))
        regressed = {entry["metric"] for entry in results if entry["regressed"]}
        assert "serve.serve_warm.p95_latency_seconds" in regressed

    def test_within_threshold_changes_pass(self):
        results = diff_snapshots(
            self._snapshot(),
            self._snapshot(**{"totals.cold_seconds": 15.0}))  # +50% < 100%
        assert not any(entry["regressed"] for entry in results)

    def test_missing_sections_are_skipped(self):
        old = self._snapshot()
        del old["serve"]  # a pre-service archive
        results = diff_snapshots(old, self._snapshot())
        metrics = {entry["metric"] for entry in results}
        assert not any(metric.startswith("serve.") for metric in metrics)

    def test_cli_diff_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        old_path = tmp_path / "old.json"
        new_path = tmp_path / "new.json"
        old_path.write_text(json.dumps(self._snapshot()))
        new_path.write_text(json.dumps(self._snapshot()))
        assert main(["bench", "--diff", str(old_path), str(new_path)]) == 0
        new_path.write_text(json.dumps(
            self._snapshot(**{"serve.speedup_vs_cold": 1.0})))
        assert main(["bench", "--diff", str(old_path), str(new_path)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out

    def test_cli_threshold_override(self, tmp_path):
        from repro.cli import main

        old_path = tmp_path / "old.json"
        new_path = tmp_path / "new.json"
        old_path.write_text(json.dumps(self._snapshot()))
        new_path.write_text(json.dumps(
            self._snapshot(**{"serve.speedup_vs_cold": 8.0})))  # -60%
        assert main(["bench", "--diff", str(old_path), str(new_path)]) == 1
        assert main(["bench", "--diff", str(old_path), str(new_path),
                     "--threshold", "serve.speedup_vs_cold=0.7"]) == 0

    def test_default_thresholds_cover_the_serve_gate(self):
        assert "serve.speedup_vs_cold" in DEFAULT_DIFF_THRESHOLDS
        assert "serve.warm_hit_rate" in DEFAULT_DIFF_THRESHOLDS
