"""QoS tests for the service layer: per-client fair scheduling, bounded
admission with structured backpressure, the elastic worker pool, and
portfolio races borrowed onto idle pool workers.

Scheduling-semantics tests swap the worker-side solve for the
deterministic stand-in from ``tests/loadgen.py`` (monkeypatched before
service construction; the fork start method snapshots it into every
worker), so they assert on *ordering and admission*, not solver
wall-clock.  The served-equals-serial suite at the bottom runs real
solves under deliberate pool churn.
"""

import collections
import contextlib
import multiprocessing
import random
import threading
import time

import pytest

import repro.engine.service as service_mod
from repro.engine.parallel import SessionSpec, run_sweep
from repro.engine.service import (
    MapRequest,
    ServerThread,
    ServiceClient,
    ServiceOverloaded,
    SolverService,
)
from repro.harness.runner import ExperimentConfig, MappingRecord
from repro.sat.cnf import CNF

from _fixtures import small_workloads as _fast_benchmarks
from loadgen import (
    Profile,
    design_verilog,
    drive_service,
    encode_delay,
    make_fake_serve,
    percentile,
    plan,
    summarize,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
pytestmark = pytest.mark.skipif(not HAS_FORK,
                                reason="requires the fork start method")

ARCH = "intel-cyclone10lp"


def _comparable(record: MappingRecord) -> dict:
    data = record.to_dict()
    data.pop("time_seconds")
    data.pop("solver_solve_seconds")
    data.pop("cache_hit")
    return data


def _req(index: int, flavor: str = "q", delay=None, use_cache=False,
         benchmark=None) -> MapRequest:
    """A distinct-by-construction request (identical repeats coalesce and
    are admitted for free, so admission tests must vary the design)."""
    return MapRequest(verilog=design_verilog(index, flavor), arch=ARCH,
                      template="dsp", use_cache=use_cache,
                      benchmark=benchmark or f"{flavor}{index}",
                      form=encode_delay(delay))


def _gate():
    return multiprocessing.get_context("fork").Event()


def _wait_until(predicate, timeout: float = 15.0, interval: float = 0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@contextlib.contextmanager
def fake_service(monkeypatch, delay: float = 0.0, gate=None, spec=None,
                 **kwargs):
    """A SolverService whose workers run the deterministic fake solve.

    The patch must land before construction — fork inherits it.  On exit
    the gate (if any) is released first so ``close()`` drains instead of
    timing out on a permanently blocked worker.
    """
    monkeypatch.setattr(service_mod, "_serve_request",
                        make_fake_serve(delay, gate))
    service = SolverService(spec or SessionSpec(enable_cache=False), **kwargs)
    try:
        yield service
    finally:
        if gate is not None:
            gate.set()
        service.close()


# --------------------------------------------------------------------------- #
# Bounded admission
# --------------------------------------------------------------------------- #
class TestAdmission:
    def test_rejects_above_global_cap(self, monkeypatch):
        gate = _gate()
        with fake_service(monkeypatch, gate=gate, workers=1,
                          max_pending=4, client_queue=64) as service:
            admitted, rejected = [], 0
            for i in range(7):
                try:
                    admitted.append(service.submit(_req(i)))
                except ServiceOverloaded as exc:
                    rejected += 1
                    assert 50 <= exc.retry_after_ms <= 10_000
            assert len(admitted) == 4 and rejected == 3
            gate.set()
            for future in admitted:
                assert future.result(timeout=60).outcome == "success"
            stats = service.stats()
        assert stats["rejections"] == 3
        assert stats["clients"][""]["rejected"] == 3

    def test_rejects_above_per_client_cap_without_punishing_others(
            self, monkeypatch):
        gate = _gate()
        with fake_service(monkeypatch, gate=gate, workers=1,
                          max_pending=64, client_queue=2) as service:
            a = [service.submit(_req(i), client="a") for i in range(2)]
            with pytest.raises(ServiceOverloaded, match="client 'a'"):
                service.submit(_req(2), client="a")
            # Client b's budget is untouched by a's full queue.
            b = service.submit(_req(10), client="b")
            gate.set()
            for future in a + [b]:
                future.result(timeout=60)
            stats = service.stats()
        assert stats["clients"]["a"]["rejected"] == 1
        assert stats["clients"]["b"].get("rejected", 0) == 0

    def test_no_rejections_at_or_below_the_cap(self, monkeypatch):
        gate = _gate()
        with fake_service(monkeypatch, gate=gate, workers=1,
                          max_pending=8, client_queue=8) as service:
            futures = [service.submit(_req(i)) for i in range(8)]
            with pytest.raises(ServiceOverloaded):
                service.submit(_req(8))
            gate.set()
            for future in futures:
                future.result(timeout=60)
            assert service.stats()["rejections"] == 1

    def test_completion_releases_admission_slots(self, monkeypatch):
        gate = _gate()
        with fake_service(monkeypatch, gate=gate, workers=1,
                          max_pending=2) as service:
            first = [service.submit(_req(i)) for i in range(2)]
            with pytest.raises(ServiceOverloaded):
                service.submit(_req(2))
            gate.set()
            for future in first:
                future.result(timeout=60)
            # Slots came back: the same submission is admitted now.
            assert service.submit(_req(2)).result(timeout=60) is not None
            assert service.stats()["pending"] == 0

    def test_coalesced_duplicates_are_admitted_free(self, monkeypatch):
        gate = _gate()
        with fake_service(monkeypatch, gate=gate, workers=1,
                          max_pending=1) as service:
            head = service.submit(_req(0))
            # Identical design: coalesces onto the in-flight solve, no slot.
            twin = service.submit(_req(0))
            with pytest.raises(ServiceOverloaded):
                service.submit(_req(1))
            gate.set()
            assert _comparable(head.result(60)) == _comparable(twin.result(60))
            assert service.stats()["coalesced"] == 1

    def test_coalesced_completion_releases_exactly_one_slot(
            self, monkeypatch):
        """Regression: a solve with coalesced waiters must return one
        admission slot, not one per waiter — per-waiter release credited
        the caps for slots never taken, so backpressure quietly stopped
        triggering under dedup-heavy traffic."""
        with fake_service(monkeypatch, workers=1, max_pending=2,
                          max_pipe_backlog=4) as service:
            # The head solve needs a real delay: an instant fake solve can
            # finish before the twins below are even submitted, and then
            # nothing coalesces.
            fast = service.submit(_req(0, delay=0.5), client="a")
            # Two riders on the same solve (one from another client):
            # neither took a slot, so neither may release one.
            twins = [service.submit(_req(0, delay=0.5), client="a"),
                     service.submit(_req(0, delay=0.5), client="b")]
            slow = service.submit(_req(1, delay=2.0), client="a")
            fast.result(timeout=60)
            # Only the fast solve's single slot came back; the slow solve
            # still holds the other, so the cap admits exactly one more.
            refill = service.submit(_req(2), client="b")
            with pytest.raises(ServiceOverloaded):
                service.submit(_req(3), client="b")
            for future in twins + [slow, refill]:
                future.result(timeout=60)
            assert service.stats()["pending"] == 0
            assert service.stats()["coalesced"] == 2

    def test_front_cache_hits_are_admitted_free(self, monkeypatch):
        gate = _gate()
        gate.set()
        with fake_service(monkeypatch, gate=gate, spec=SessionSpec(),
                          workers=1, max_pending=1) as service:
            warm_key = service.submit(_req(0, use_cache=None)).result(60)
            assert warm_key is not None
            gate.clear()
            blocked = service.submit(_req(1, use_cache=None))  # fills the cap
            with pytest.raises(ServiceOverloaded):
                service.submit(_req(2, use_cache=None))
            # The cached design answers instantly despite the full cap.
            hit = service.submit(_req(0, use_cache=None)).result(timeout=10)
            assert hit.cache_hit
            gate.set()
            blocked.result(timeout=60)


# --------------------------------------------------------------------------- #
# Per-client fair scheduling
# --------------------------------------------------------------------------- #
class TestFairScheduling:
    def test_fifo_preserved_within_a_client(self, monkeypatch):
        completed = []
        with fake_service(monkeypatch, delay=0.002, workers=1) as service:
            futures = []
            for i in range(10):
                future = service.submit(_req(i), client="solo")
                future.add_done_callback(
                    lambda f, i=i: completed.append(i))
                futures.append(future)
            for future in futures:
                future.result(timeout=60)
        assert completed == list(range(10))

    def test_round_robin_interleaves_a_flooder_with_a_steady_client(
            self, monkeypatch):
        gate = _gate()
        completed = []
        with fake_service(monkeypatch, delay=0.004, gate=gate, workers=1,
                          max_pipe_backlog=1) as service:
            futures = []
            for i in range(8):
                future = service.submit(_req(i, flavor="f"), client="flood")
                future.add_done_callback(
                    lambda f, tag=("flood", i): completed.append(tag))
                futures.append(future)
            for i in range(2):
                future = service.submit(_req(100 + i, flavor="s"),
                                        client="steady")
                future.add_done_callback(
                    lambda f, tag=("steady", i): completed.append(tag))
                futures.append(future)
            gate.set()
            for future in futures:
                future.result(timeout=60)
        positions = [idx for idx, (client, _) in enumerate(completed)
                     if client == "steady"]
        # DRR: the late steady client is served within the first rotations,
        # not behind the flooder's whole queue (which would be 8 and 9).
        assert len(completed) == 10
        assert positions[0] < positions[1]
        assert positions[1] <= 5, completed

    def test_flood_does_not_starve_a_steady_client(self, monkeypatch):
        """The acceptance criterion: under a pipelined flood, a steady
        client's p95 stays within 3x its uncontended p95 (the steady
        solves dominate their own latency, not the flooder's backlog)."""
        steady = Profile(name="steady", kind="steady", requests=6,
                         think_seconds=0.01, base=1000, flavor="s",
                         delay=0.05)
        flood = Profile(name="flood", kind="flooder", requests=40,
                        base=0, flavor="f", delay=0.02)
        with fake_service(monkeypatch, workers=1, max_pipe_backlog=1,
                          max_pending=256, fair_quantum=1) as service:
            uncontended = summarize(drive_service(service, [steady], seed=7))
            contended = summarize(
                drive_service(service, [flood, steady], seed=7))
        p95_alone = uncontended["steady"]["p95_latency_seconds"]
        p95_flooded = contended["steady"]["p95_latency_seconds"]
        assert uncontended["steady"]["served"] == 6
        assert contended["steady"]["served"] == 6          # zero starvation
        assert contended["flood"]["served"] == 40          # below the cap...
        assert contended["flood"]["rejected"] == 0         # ...no rejections
        assert p95_alone >= 0.05                           # the sleep floor
        assert p95_flooded <= 3.0 * p95_alone, \
            f"steady p95 {p95_flooded:.3f}s vs uncontended {p95_alone:.3f}s"
        # The flooder queues behind itself, not behind the steady client.
        assert contended["flood"]["p95_latency_seconds"] > p95_flooded


# --------------------------------------------------------------------------- #
# The elastic pool
# --------------------------------------------------------------------------- #
class TestElasticPool:
    def test_scales_up_under_sustained_backlog(self, monkeypatch):
        with fake_service(monkeypatch, delay=0.03, workers=1, min_workers=1,
                          max_workers=3, max_pipe_backlog=2,
                          scale_up_after=0.05,
                          idle_retire_seconds=30.0) as service:
            futures = [service.submit(_req(i)) for i in range(24)]
            grew = _wait_until(lambda: service.stats()["workers"] >= 2)
            for future in futures:
                future.result(timeout=60)
            stats = service.stats()
        assert grew, "pool never grew despite sustained backlog"
        assert stats["scale_ups"] >= 1
        assert stats["pool_peak"] >= 2
        assert stats["pool_peak"] <= 3

    def test_retires_idle_workers_down_to_min(self, monkeypatch):
        with fake_service(monkeypatch, workers=2, min_workers=1,
                          max_workers=2,
                          idle_retire_seconds=0.1) as service:
            service.submit(_req(0)).result(timeout=60)
            shrank = _wait_until(lambda: service.stats()["workers"] == 1)
            stats = service.stats()
            # The survivor still serves traffic after its peer retired.
            assert service.submit(_req(1)).result(timeout=60) is not None
        assert shrank, "idle worker was never retired"
        assert stats["scale_downs"] >= 1
        assert stats["min_workers"] == 1

    def test_affinity_is_purged_and_rerouted_after_scale_down(
            self, monkeypatch):
        with fake_service(monkeypatch, workers=2, min_workers=1,
                          max_workers=2,
                          idle_retire_seconds=0.1) as service:
            # Pin two design families across both workers.
            service.submit(_req(0)).result(timeout=60)
            service.submit(_req(1)).result(timeout=60)
            assert _wait_until(lambda: service.stats()["workers"] == 1)
            live = set(service._by_index.keys())
            assert set(service.affinity_snapshot().values()) <= live
            # Both families still served after one pin was orphaned.
            assert service.submit(_req(0)).result(timeout=60) is not None
            assert service.submit(_req(1)).result(timeout=60) is not None

    def test_seeded_churn_never_drops_or_leaks_requests(self, monkeypatch):
        """Satellite: retiring an idle worker never drops a just-routed
        request.  Seeded random bursts with deliberate quiet gaps force
        scale-downs to race fresh submissions; every future must resolve
        and the pool must stay within its bounds throughout."""
        rng = random.Random(11)
        with fake_service(monkeypatch, delay=0.004, workers=2, min_workers=1,
                          max_workers=3, max_pipe_backlog=2,
                          scale_up_after=0.03,
                          idle_retire_seconds=0.05) as service:
            futures = []
            # 60 distinct designs: the generator cycles at 64 per flavor,
            # and a wrapped twin could coalesce instead of dispatching.
            for i in range(60):
                delay = rng.choice([0.0, 0.004, 0.01])
                futures.append(service.submit(_req(i, flavor="r",
                                                   delay=delay)))
                if i % 16 == 15:
                    time.sleep(0.15)   # quiet period: invite a retirement
                elif rng.random() < 0.4:
                    time.sleep(rng.uniform(0.0, 0.008))
                stats = service.stats()
                assert 1 <= stats["workers"] <= 3
            for future in futures:
                assert future.result(timeout=60).outcome == "success"
            stats = service.stats()
        assert stats["completed"] == 60
        assert stats["scale_downs"] >= 1, "churn never exercised a retire"
        assert stats["errors"] == 0

    def test_requeue_orphans_preserves_fifo_within_client(self):
        """Regression: multiple orphans from one client, requeued with
        ``appendleft``, must land oldest-first at the head of the client
        queue — walking them oldest-first reversed their order."""
        service = SolverService.__new__(SolverService)
        service._lock = threading.Lock()
        service._client_queues = {}
        service._rr_order = collections.deque()
        service._stats = collections.Counter()
        handle = service_mod._WorkerHandle(7)
        pendings = []
        for i in range(3):
            pending = service_mod._Pending(("key", i), _req(40 + i),
                                           f"fp{i}", i + 1, "c")
            pending.waiters.append((None, pending.request, "c"))
            pendings.append(pending)
        handle.sent[1] = pendings[0]     # oldest: written to the pipe
        handle.sent[2] = pendings[1]
        handle.queue.append(pendings[2])  # newest: assigned, not sent
        service._requeue_orphans(handle)
        assert list(service._client_queues["c"]) == pendings
        assert not handle.sent and not handle.queue
        assert list(service._rr_order) == ["c"]

    @pytest.mark.parametrize("kwargs", [
        {"workers": 2, "min_workers": 3},            # min above workers
        {"workers": 2, "max_workers": 1},            # max below workers
        {"workers": 1, "min_workers": 0},            # min below 1
        {"workers": 1, "max_pending": 0},            # unusable cap
        {"workers": 1, "fair_quantum": 0},           # unusable quantum
    ])
    def test_invalid_bounds_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SolverService(SessionSpec(), **kwargs)

    def test_stats_expose_the_qos_counters(self, monkeypatch):
        with fake_service(monkeypatch, workers=1) as service:
            service.submit(_req(0), client="c").result(timeout=60)
            stats = service.stats()
        for key in ("pending", "clients", "rejections", "scale_ups",
                    "scale_downs", "workers", "min_workers", "max_workers",
                    "pool_peak"):
            assert key in stats, key
        assert stats["clients"]["c"]["submitted"] == 1
        assert stats["clients"]["c"]["served"] == 1


# --------------------------------------------------------------------------- #
# Backpressure and the control plane over the socket
# --------------------------------------------------------------------------- #
class TestSocketBackpressure:
    def _map_payload(self, index, flavor="x", client=None):
        payload = {"op": "map", "verilog": design_verilog(index, flavor),
                   "arch": ARCH, "use_cache": False,
                   "benchmark": f"{flavor}{index}"}
        if client is not None:
            payload["client"] = client
        return payload

    def test_overloaded_reply_arrives_on_a_live_connection(
            self, monkeypatch, tmp_path):
        socket_path = tmp_path / "qos.sock"
        gate = _gate()
        with fake_service(monkeypatch, gate=gate, workers=1, max_pending=2,
                          client_queue=2) as service:
            with ServerThread(service, socket_path):
                with ServiceClient(socket_path) as client:
                    futures = [client.submit(self._map_payload(i))
                               for i in range(4)]
                    # The requests race through executor threads, so *which*
                    # two are admitted is arbitrary — but with the workers
                    # wedged, exactly the two over-cap ones answer now.
                    assert _wait_until(
                        lambda: sum(f.done() for f in futures) == 2)
                    rejected = [f for f in futures if f.done()]
                    for future in rejected:
                        response = future.result(timeout=5)
                        assert response["ok"] is False
                        assert response["error"] == "overloaded"
                        assert isinstance(response["retry_after_ms"], int)
                        assert response["retry_after_ms"] >= 50
                    # The connection survived the rejections.
                    assert client.ping(timeout=10)
                    gate.set()
                    for future in futures:
                        if future not in rejected:
                            assert future.result(timeout=60)["ok"] is True

    def test_control_plane_bypasses_admission_when_saturated(
            self, monkeypatch, tmp_path):
        """Satellite regression: stats/ping answered promptly while the
        map queue is at its cap and every worker is wedged."""
        socket_path = tmp_path / "qos.sock"
        gate = _gate()
        with fake_service(monkeypatch, gate=gate, workers=1, max_pending=2,
                          client_queue=2) as service:
            with ServerThread(service, socket_path):
                with ServiceClient(socket_path) as client:
                    backlog = [client.submit(self._map_payload(i))
                               for i in range(2)]
                    # Wait for both maps to be admitted (they cross an
                    # executor thread), then time the control plane.
                    assert _wait_until(
                        lambda: service.stats()["pending"] == 2)
                    started = time.monotonic()
                    assert client.ping(timeout=5.0)
                    stats = client.stats(timeout=5.0)
                    assert time.monotonic() - started < 5.0
                    assert stats["pending"] == 2
                    gate.set()
                    for future in backlog:
                        assert future.result(timeout=60)["ok"] is True

    def test_client_retry_honours_the_hint_until_admitted(
            self, monkeypatch, tmp_path):
        socket_path = tmp_path / "qos.sock"
        with fake_service(monkeypatch, delay=0.05, workers=1,
                          max_pending=2, client_queue=2) as service:
            with ServerThread(service, socket_path):
                with ServiceClient(socket_path) as client:
                    flood = [client.submit(self._map_payload(i))
                             for i in range(6)]
                    # Bounded retry rides out the backlog.
                    response = client.map_verilog(
                        design_verilog(50, "x"), arch=ARCH, use_cache=False,
                        timeout=60, retry_overloaded=16, benchmark="patient")
                    assert response["ok"] is True, response
                    rejected = sum(
                        1 for f in flood
                        if f.result(timeout=60).get("error") == "overloaded")
            assert service.stats()["rejections"] >= rejected >= 1

    def test_zero_retries_surface_the_rejection(self, monkeypatch, tmp_path):
        socket_path = tmp_path / "qos.sock"
        gate = _gate()
        with fake_service(monkeypatch, gate=gate, workers=1, max_pending=1,
                          client_queue=1) as service:
            with ServerThread(service, socket_path):
                with ServiceClient(socket_path) as client:
                    admitted = client.submit(self._map_payload(0))
                    assert _wait_until(
                        lambda: service.stats()["pending"] == 1)
                    response = client.request(self._map_payload(1),
                                              timeout=30,
                                              retry_overloaded=0)
                    assert response.get("error") == "overloaded"
                    gate.set()
                    assert admitted.result(timeout=60)["ok"] is True

    def test_connections_get_distinct_client_ids(self, monkeypatch,
                                                 tmp_path):
        socket_path = tmp_path / "qos.sock"
        with fake_service(monkeypatch, workers=1) as service:
            with ServerThread(service, socket_path):
                with ServiceClient(socket_path) as first:
                    first.map_verilog(design_verilog(0, "x"), arch=ARCH,
                                      use_cache=False, timeout=60)
                with ServiceClient(socket_path) as second:
                    second.map_verilog(design_verilog(1, "x"), arch=ARCH,
                                       use_cache=False, timeout=60)
            clients = service.stats()["clients"]
        assert "conn-1" in clients and "conn-2" in clients
        assert clients["conn-1"]["served"] == 1
        assert clients["conn-2"]["served"] == 1

    def test_explicit_client_field_overrides_the_connection_id(
            self, monkeypatch, tmp_path):
        socket_path = tmp_path / "qos.sock"
        with fake_service(monkeypatch, workers=1) as service:
            with ServerThread(service, socket_path):
                with ServiceClient(socket_path) as client:
                    client.request(self._map_payload(0, client="tenant-a"),
                                   timeout=60)
            clients = service.stats()["clients"]
        assert clients["tenant-a"]["served"] == 1
        assert "conn-1" not in clients


# --------------------------------------------------------------------------- #
# Determinism: served == serial through resize churn, all four modes
# --------------------------------------------------------------------------- #
class TestServedEqualsSerialUnderChurn:
    @pytest.mark.parametrize("incremental,incremental_verify",
                             [(False, False), (True, False),
                              (False, True), (True, True)])
    def test_served_records_equal_serial_sweep(self, incremental,
                                               incremental_verify):
        benchmarks = _fast_benchmarks(4)
        config = ExperimentConfig(incremental=incremental,
                                  incremental_verify=incremental_verify)
        serial = run_sweep(benchmarks, config, workers=1).records
        spec = SessionSpec.from_config(config)
        # A deliberately twitchy pool: tiny hysteresis on both edges and a
        # one-deep pipe so assignment pressure forces resizes mid-run.
        with SolverService(spec, workers=1, max_pipe_backlog=1,
                           min_workers=1, max_workers=3,
                           scale_up_after=0.02,
                           idle_retire_seconds=0.05) as service:
            served = service.map_many(benchmarks, config)
            stats = service.stats()
        assert [_comparable(r) for r in serial] == \
            [_comparable(r) for r in served]
        assert stats["workers"] <= 3 and stats["pool_peak"] <= 3


# --------------------------------------------------------------------------- #
# Portfolio races on idle pool workers
# --------------------------------------------------------------------------- #
def _sat_cnf() -> CNF:
    return CNF(clauses=[[1, 2], [-1], [-2, 3]])


class TestServicePortfolio:
    def test_race_cnf_wins_on_idle_workers(self):
        with SolverService(SessionSpec(), workers=2) as service:
            outcome = service.race_cnf(_sat_cnf(),
                                       deadline=time.monotonic() + 30.0)
            stats = service.stats()
        assert outcome is not None, "idle pool refused the race"
        result, winner = outcome
        assert result.is_sat and winner != "none"
        assert stats["races"] == 1
        assert stats["race_fallbacks"] == 0

    def test_race_falls_back_when_every_worker_is_busy(self, monkeypatch):
        gate = _gate()
        with fake_service(monkeypatch, gate=gate, workers=1) as service:
            blocked = service.submit(_req(0))   # occupies the only worker
            outcome = service.race_cnf(_sat_cnf(),
                                       deadline=time.monotonic() + 5.0)
            assert outcome is None              # caller should race locally
            assert service.stats()["race_fallbacks"] == 1
            gate.set()
            blocked.result(timeout=60)

    def test_service_portfolio_solves_and_records_the_win(self):
        with SolverService(SessionSpec(), workers=2) as service:
            portfolio = service.portfolio()
            result, winner = portfolio.solve(
                _sat_cnf(), deadline=time.monotonic() + 30.0)
        assert result.is_sat
        assert winner in portfolio.member_names
        assert portfolio.win_counts()[winner] == 1

    def test_pinned_family_reroutes_while_its_worker_races(
            self, monkeypatch):
        """Regression: a race borrowing a family's pinned worker must not
        stall that family's maps — the pin falls through to a non-racing
        worker, keeping map latency independent of race latency."""
        race_gate = _gate()

        def fake_race(conn, race_id, member_name, cnf, deadline,
                      assumptions):
            race_gate.wait()
            conn.send(("race_result", race_id, member_name, None, None))

        monkeypatch.setattr(service_mod, "_race_in_worker", fake_race)
        with fake_service(monkeypatch, workers=2) as service:
            try:
                # Occupy worker 0 with a slow family-X solve; family Y
                # then pins to worker 1, the only idle worker — which the
                # race borrows next.
                slow = service.submit(_req(0, delay=2.0))
                service.submit(_req(1)).result(timeout=60)
                outcomes = []
                racer = threading.Thread(target=lambda: outcomes.append(
                    service.race_cnf(_sat_cnf(), names=("fake",))))
                racer.start()
                assert _wait_until(lambda: service.stats()["races"] == 1)
                # Family Y's next map must complete while its pinned
                # worker is still racing (re-routed behind the slow map
                # on worker 0), not stall until the race gate opens.
                again = service.submit(_req(1))
                assert again.result(timeout=30).outcome == "success"
            finally:
                race_gate.set()
            racer.join(timeout=30)
            slow.result(timeout=60)
            assert outcomes and outcomes[0] is not None

    def test_maps_are_served_after_a_race_on_the_same_pool(self):
        with SolverService(SessionSpec(), workers=1) as service:
            outcome = service.race_cnf(_sat_cnf(),
                                       deadline=time.monotonic() + 30.0)
            assert outcome is not None
            record = service.submit(_req(0)).result(timeout=120)
            stats = service.stats()
        assert record is not None
        assert stats["races"] == 1 and stats["completed"] == 1


# --------------------------------------------------------------------------- #
# The load generator itself
# --------------------------------------------------------------------------- #
class TestLoadgen:
    def test_same_seed_same_schedule(self):
        profile = Profile(name="steady-0", kind="steady", requests=12,
                          think_seconds=0.02)
        assert plan(profile, 42) == plan(profile, 42)

    def test_different_seed_different_schedule(self):
        profile = Profile(name="steady-0", kind="steady", requests=12,
                          think_seconds=0.02)
        assert plan(profile, 1) != plan(profile, 2)

    def test_flooder_plans_have_no_think_time(self):
        profile = Profile(name="f", kind="flooder", requests=8)
        assert all(step.think_seconds == 0.0 for step in plan(profile, 3))

    def test_generated_designs_are_distinct(self):
        sources = {design_verilog(i, flavor)
                   for flavor in ("qa", "qb") for i in range(64)}
        assert len(sources) == 128

    def test_summarize_counts_and_percentiles(self):
        from loadgen import Outcome

        outcomes = {"c": [Outcome("c", i, "ok", latency_seconds=i / 100.0)
                          for i in range(20)]
                    + [Outcome("c", 99, "rejected", 0.0)]}
        summary = summarize(outcomes)["c"]
        assert summary["requests"] == 21
        assert summary["served"] == 20 and summary["rejected"] == 1
        assert summary["p50_latency_seconds"] == pytest.approx(0.10)
        assert summary["p95_latency_seconds"] == pytest.approx(0.19)
        assert percentile([], 0.95) == 0.0


# --------------------------------------------------------------------------- #
# CLI: serve bounds and the request deadline (exit code 6)
# --------------------------------------------------------------------------- #
class TestCli:
    def test_serve_rejects_inconsistent_worker_bounds(self):
        from repro.cli import main

        with pytest.raises(SystemExit) as info:
            main(["serve", "--workers", "2", "--min-workers", "3"])
        assert info.value.code == 2
        with pytest.raises(SystemExit) as info:
            main(["serve", "--workers", "2", "--max-workers", "1"])
        assert info.value.code == 2

    def test_request_deadline_exits_6_when_server_is_saturated(
            self, monkeypatch, tmp_path, capsys):
        """Satellite: a reachable-but-wedged server must surface as the
        distinct deadline exit code, not an eternal block."""
        from repro.cli import main

        socket_path = tmp_path / "qos.sock"
        source = tmp_path / "design.v"
        source.write_text(design_verilog(0, "x"))
        gate = _gate()
        with fake_service(monkeypatch, gate=gate, workers=1) as service:
            with ServerThread(service, socket_path):
                code = main(["request", str(source),
                             "--socket", str(socket_path),
                             "--arch-desc", ARCH,
                             "--deadline", "0.5", "--retries", "0"])
                gate.set()
        assert code == 6
        assert "deadline" in capsys.readouterr().err

    def test_request_surfaces_overload_after_bounded_retries(
            self, monkeypatch, tmp_path, capsys):
        from repro.cli import main

        socket_path = tmp_path / "qos.sock"
        source = tmp_path / "design.v"
        source.write_text(design_verilog(1, "x"))
        gate = _gate()
        with fake_service(monkeypatch, gate=gate, workers=1, max_pending=1,
                          client_queue=1) as service:
            with ServerThread(service, socket_path):
                with ServiceClient(socket_path) as filler:
                    admitted = filler.submit(
                        {"op": "map", "verilog": design_verilog(0, "x"),
                         "arch": ARCH, "use_cache": False})
                    assert _wait_until(
                        lambda: service.stats()["pending"] == 1)
                    code = main(["request", str(source),
                                 "--socket", str(socket_path),
                                 "--arch-desc", ARCH,
                                 "--deadline", "10", "--retries", "1"])
                    gate.set()
                    admitted.result(timeout=60)
        assert code == 1
        assert "pending cap" in capsys.readouterr().err
