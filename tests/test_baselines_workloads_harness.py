"""Tests for the baseline mappers, the workload enumeration, the experiment
harness and the CLI."""

import pytest

from repro.baselines import (
    AbcLutMapper,
    SotaIntelMapper,
    SotaLatticeMapper,
    SotaXilinxMapper,
    YosysLikeMapper,
    analyze_design,
    sota_for,
)
from repro.bv import bvadd, bvand, bvmul, bvvar
from repro.cli import build_parser, main
from repro.harness.experiments import (
    default_benchmarks,
    extensibility,
    figure6_completeness,
    figure6_timing,
    figure7_histogram,
    render_completeness_table,
    render_table1,
    render_timing_table,
    resource_reduction,
    table1_primitives,
)
from repro.harness.runner import ExperimentConfig, MappingRecord, run_baselines
from repro.hdl.behavioral import verilog_to_behavioral
from repro.workloads import enumerate_workloads, sample_workloads, workload_counts
from repro.workloads.generator import XILINX_FORMS


def _design(verilog):
    return verilog_to_behavioral(verilog)


ADD_MUL_AND = ("module add_mul_and(input clk, input [7:0] a, b, c, d, output reg [7:0] out);"
               " reg [7:0] r; always @(posedge clk) begin r <= (a+b)*c&d; out <= r; end endmodule")
PLAIN_MUL = ("module mul(input clk, input [7:0] a, b, output [7:0] out);"
             " assign out = a * b; endmodule")
MUL_ADD = ("module mul_add(input clk, input [7:0] a, b, c, output [7:0] out);"
           " assign out = (a * b) + c; endmodule")


class TestDesignFeatureAnalysis:
    def test_plain_multiply(self):
        features = analyze_design(_design(PLAIN_MUL).program)
        assert features.has_multiply
        assert not features.multiply_has_preadd
        assert features.post_op is None
        assert features.pipeline_stages == 0

    def test_preadd_and_post_op(self):
        features = analyze_design(_design(ADD_MUL_AND).program)
        assert features.multiply_has_preadd
        assert features.post_op == "and"
        assert features.pipeline_stages == 2

    def test_mul_add_post_op(self):
        features = analyze_design(_design(MUL_ADD).program)
        assert features.post_op == "add"
        assert not features.multiply_has_preadd


class TestBaselineRules:
    def test_yosys_maps_plain_multiply_on_xilinx(self):
        result = YosysLikeMapper().map(_design(PLAIN_MUL), "xilinx-ultrascale-plus")
        assert result.mapped_to_single_dsp

    def test_yosys_fails_on_add_mul_and(self):
        result = YosysLikeMapper().map(_design(ADD_MUL_AND), "xilinx-ultrascale-plus")
        assert not result.mapped_to_single_dsp
        # Partial mapping: one DSP for the multiplier plus fabric logic,
        # which is exactly the §2.1 failure scenario.
        assert result.resources.dsps == 1
        assert result.resources.luts > 0
        assert result.resources.registers > 0

    def test_yosys_maps_nothing_on_intel(self):
        result = YosysLikeMapper().map(_design(PLAIN_MUL), "intel-cyclone10lp")
        assert not result.mapped_to_single_dsp

    def test_sota_xilinx_fails_on_logic_unit_combination(self):
        result = SotaXilinxMapper().map(_design(ADD_MUL_AND))
        assert not result.mapped_to_single_dsp

    def test_sota_xilinx_maps_mul_add(self):
        result = SotaXilinxMapper().map(_design(MUL_ADD))
        assert result.mapped_to_single_dsp

    def test_sota_lattice_maps_plain_multiply(self):
        result = SotaLatticeMapper().map(_design(PLAIN_MUL))
        assert result.mapped_to_single_dsp

    def test_sota_intel_rejects_signed(self):
        features_mapper = SotaIntelMapper()
        result = features_mapper.map(_design(PLAIN_MUL), is_signed=False)
        assert result.mapped_to_single_dsp

    def test_sota_for_unknown_architecture(self):
        with pytest.raises(KeyError):
            sota_for("sofa")

    def test_abc_lut_mapper_counts_luts(self):
        a, b = bvvar("a", 8), bvvar("b", 8)
        result = AbcLutMapper(lut_size=6).map_expressions([bvand(bvadd(a, b), b)])
        assert result.lut_count > 0
        assert result.depth >= 1

    def test_abc_lut_mapper_multiplier_is_larger_than_adder(self):
        a, b = bvvar("a", 8), bvvar("b", 8)
        adder = AbcLutMapper().map_expressions([bvadd(a, b)])
        multiplier = AbcLutMapper().map_expressions([bvmul(a, b)])
        assert multiplier.lut_count > adder.lut_count


class TestWorkloads:
    def test_paper_counts_reproduced(self):
        counts = workload_counts()
        assert counts["xilinx-ultrascale-plus"] == 1320
        assert counts["lattice-ecp5"] == 396
        assert counts["intel-cyclone10lp"] == 66

    def test_xilinx_form_count(self):
        assert len(XILINX_FORMS) == 15

    def test_every_microbenchmark_parses_and_imports(self):
        for benchmark in sample_workloads("xilinx-ultrascale-plus", 12, max_width=9):
            design = verilog_to_behavioral(benchmark.verilog)
            assert design.pipeline_depth == benchmark.stages
            assert set(design.input_widths) == set(benchmark.form.inputs)

    def test_sampling_is_deterministic_and_covers_forms(self):
        sample_a = sample_workloads("lattice-ecp5", 12, seed=3)
        sample_b = sample_workloads("lattice-ecp5", 12, seed=3)
        assert [b.name for b in sample_a] == [b.name for b in sample_b]
        assert len({b.form.name for b in sample_a}) == 6

    def test_unknown_architecture_rejected(self):
        with pytest.raises(KeyError):
            enumerate_workloads("sofa")

    def test_signed_variants_generated(self):
        names = {b.name for b in enumerate_workloads("intel-cyclone10lp")}
        assert "mul_w8_p0_u" in names and "mul_w8_p0_s" in names


class TestHarness:
    def test_baseline_runner_produces_records(self):
        benchmarks = sample_workloads("xilinx-ultrascale-plus", 10, max_width=9)
        records = run_baselines(benchmarks)
        assert len(records) == 2 * len(benchmarks)
        assert {record.tool for record in records} == {"sota", "yosys"}

    def test_figure6_completeness_baselines_only(self):
        benchmarks = {"xilinx-ultrascale-plus": sample_workloads("xilinx-ultrascale-plus",
                                                                 12, max_width=9)}
        results = figure6_completeness(benchmarks, include_lakeroad=False)
        summary = results["xilinx-ultrascale-plus"]
        assert summary["total"] == 12
        assert "sota" in summary["tools"] and "yosys" in summary["tools"]
        assert summary["tools"]["sota"]["mapped"] >= summary["tools"]["yosys"]["mapped"]
        assert render_completeness_table(results)

    def test_figure6_timing_rows(self):
        records = [MappingRecord("yosys", "lattice-ecp5", "b", "mul", 8, 0, False,
                                 "success", 0.5),
                   MappingRecord("yosys", "lattice-ecp5", "c", "mul", 8, 1, False,
                                 "fail", 1.5)]
        rows = figure6_timing({"lattice-ecp5": records})
        assert rows[0]["median"] == 1.0
        assert render_timing_table(rows)

    def test_figure7_histogram(self):
        records = [MappingRecord("lakeroad", "x", f"b{i}", "mul", 8, 0, False,
                                 "success", float(i)) for i in range(10)]
        records.append(MappingRecord("lakeroad", "x", "t", "mul", 8, 0, False,
                                     "timeout", 60.0))
        histogram = figure7_histogram(records, bins=5)
        assert sum(histogram["counts"]) == 10
        assert histogram["timeouts"] == 1

    def test_table1_rows_include_paper_numbers(self):
        rows = table1_primitives()
        dsp_row = next(row for row in rows if row["primitive"] == "DSP48E2")
        assert dsp_row["paper_verilog_sloc"] == 896
        assert dsp_row["verilog_sloc"] > 0
        assert render_table1(rows)

    def test_resource_reduction_summary(self):
        lakeroad = MappingRecord("lakeroad", "x", "b1", "mul", 8, 0, False, "success",
                                 1.0, dsps=1, luts=0, registers=0)
        sota = MappingRecord("sota", "x", "b1", "mul", 8, 0, False, "fail",
                             0.1, dsps=1, luts=16, registers=32)
        summary = resource_reduction([lakeroad, sota])
        assert summary["x:sota"]["avg_les_saved"] == 16
        assert summary["x:sota"]["avg_registers_saved"] == 32

    def test_extensibility_rows(self):
        rows = extensibility()
        by_name = {row["architecture"]: row for row in rows}
        assert by_name["sofa"]["description_sloc"] < by_name["xilinx-ultrascale-plus"][
            "description_sloc"] * 6
        assert by_name["xilinx-ultrascale-plus"]["paper_description_sloc"] == 185

    def test_default_benchmarks_are_bounded(self):
        benchmarks = default_benchmarks("lattice-ecp5", count=6)
        assert len(benchmarks) == 6
        assert all(b.width <= 10 for b in benchmarks)

    def test_experiment_config_timeouts(self):
        config = ExperimentConfig()
        assert config.timeout_for("xilinx-ultrascale-plus") > config.timeout_for(
            "intel-cyclone10lp")


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["design.v"])
        assert args.template == "dsp"
        assert args.arch_desc == "xilinx-ultrascale-plus"

    def test_missing_file_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["/nonexistent/file.v"])

    def test_end_to_end_on_fast_architecture(self, tmp_path, capsys):
        source = ("module mul(input clk, input [7:0] a, b, output [7:0] out);"
                  " assign out = a * b; endmodule")
        path = tmp_path / "mul.v"
        path.write_text(source)
        output = tmp_path / "mul_impl.v"
        exit_code = main([str(path), "--arch-desc", "intel-cyclone10lp",
                          "--timeout", "30", "--no-validate", "-o", str(output)])
        assert exit_code == 0
        assert "cyclone10lp_mac_mult" in output.read_text()

    def test_unsat_exit_code(self, tmp_path):
        source = ("module nomap(input clk, input [7:0] a, b, output [7:0] out);"
                  " assign out = (a * b) ^ (a + b); endmodule")
        path = tmp_path / "nomap.v"
        path.write_text(source)
        exit_code = main([str(path), "--arch-desc", "intel-cyclone10lp",
                          "--timeout", "30", "--no-validate"])
        assert exit_code in (2, 3)
